// Command benchrunner regenerates the tables and figures of the ProMIPS
// paper's evaluation section (§VIII) on the synthetic dataset analogues.
//
// Usage:
//
//	benchrunner -fig all                      # everything, all datasets
//	benchrunner -fig 5 -dataset Netflix       # one figure, one dataset
//	benchrunner -fig ablations -dataset Sift
//	benchrunner -fig 4 -n 5000 -queries 20    # override workload size
//
// Figures: 4 (index size + preprocessing), 5 (overall ratio), 6 (recall),
// 7 (page access), 8 (CPU time), 9 (total time), 10 (impact of c),
// 11 (impact of p), table2 (complexity scaling), ablations (Quick-Probe,
// partition pattern, projected dimension), concurrency (QPS of one shared
// index under 1/2/4/8 workers), shards (disk-model QPS across 1/2/4/8
// shards at a fixed worker count, one disk-model pool per shard),
// degraded (fan-out tail latency with one slow shard, with and without
// per-shard deadlines — the failure-isolation measurement), repl
// (replication convergence over the shared-filesystem source vs the
// /v1/repl/* HTTP wire), updates (search tail under a concurrent insert
// stream with and without background auto-compaction — the non-blocking
// updates measurement).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"promips/bench"
	"promips/dataset"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all,4,5,6,7,8,9,10,11,table2,ablations,concurrency,shards,degraded,repl,updates")
	ds := flag.String("dataset", "all", "dataset: all, Netflix, Yahoo, P53, Sift")
	n := flag.Int("n", 0, "points per dataset (0 = laptop-scale default)")
	queries := flag.Int("queries", 0, "queries per dataset (0 = 100, the paper's workload)")
	seed := flag.Int64("seed", 1, "random seed")
	kList := flag.String("ks", "", "comma-separated k values (default 10..100 step 10)")
	out := flag.String("out", "", "perf mode: write a BENCH_<label>.json report to this path instead of printing figures")
	label := flag.String("label", "", "perf mode: label recorded in the report (default derived from -out filename)")
	baseline := flag.String("baseline", "", "perf mode: prior report to embed and diff against")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	flag.Parse()

	// Every experiment below runs under this context: -timeout turns a hung
	// or mis-sized workload into a clean deadline error instead of a CI job
	// that has to be killed from outside.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *out != "" {
		if err := runPerf(ctx, *out, *label, *baseline, *n, *queries, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}

	specs := dataset.Specs()
	if *ds != "all" {
		s, err := dataset.Get(*ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		specs = []dataset.Spec{s}
	}
	ks := bench.Ks()
	if *kList != "" {
		ks = nil
		for _, part := range strings.Split(*kList, ",") {
			var k int
			if _, err := fmt.Sscan(strings.TrimSpace(part), &k); err != nil || k <= 0 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad k %q\n", part)
				os.Exit(1)
			}
			ks = append(ks, k)
		}
	}

	for _, spec := range specs {
		if err := runDataset(ctx, spec, *fig, *n, *queries, *seed, ks); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
	}
}

// runPerf records the perf baseline every perf PR is judged against: the
// Search hot path (ns/op, allocs/op, B/op, pages) and the QPS curve on the
// default synthetic workload, written as JSON for the repo's BENCH_*.json
// trajectory.
func runPerf(ctx context.Context, out, label, baselinePath string, n, queries int, seed int64) error {
	if label == "" {
		base := filepath.Base(out)
		base = strings.TrimSuffix(base, filepath.Ext(base))
		label = strings.TrimPrefix(base, "BENCH_")
	}
	cfg := bench.PerfConfig{Label: label, N: n, NumQueries: queries, Seed: seed}
	fmt.Fprintf(os.Stderr, "perf: measuring label=%q...\n", label)
	rep, err := bench.RunPerf(ctx, cfg)
	if err != nil {
		return err
	}
	if baselinePath != "" {
		prior, err := bench.LoadPerfReport(baselinePath)
		if err != nil {
			return err
		}
		rep.CompareToBaseline(prior)
	}
	if err := rep.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("perf[%s]: Search %d ns/op, %d allocs/op, %d B/op, %.1f pages/query (gomaxprocs=%d)\n",
		rep.Label, rep.Search.NsPerOp, rep.Search.AllocsPerOp, rep.Search.BytesPerOp, rep.Search.PagesPerOp, rep.GoMaxProcs)
	fmt.Printf("perf[%s]: filtered Search %d ns/op, %.1f pages/query\n",
		rep.Label, rep.Filtered.NsPerOp, rep.Filtered.PagesPerOp)
	if a := rep.InsertAck; a != nil {
		fmt.Printf("perf[%s]: insert ack (fsync-always): %d ns/op serial, %d ns/op at %d updaters (%.1fx amortized; fsync-never floor %d ns/op)\n",
			rep.Label, a.SerialNsPerOp, a.ParallelNsPerOp, a.Updaters, a.AmortizationX, a.FsyncNeverNsPerOp)
	}
	if eff := rep.Prefilter; eff != nil {
		fmt.Printf("perf[%s]: pq_prefilter candidates %.1f -> %.1f, pages %.1f -> %.1f (preranked %.0f, pruned %.0f per query)\n",
			rep.Label, eff.CandidatesWithout, eff.CandidatesWith, eff.PagesWithout, eff.PagesWith,
			eff.PrerankedPerQuery, eff.PrunedPerQuery)
	}
	if m := rep.BatchModel; m != nil {
		fmt.Printf("perf[%s]: batch disk model: pool=%d pages, %dus/miss\n", rep.Label, m.PoolPages, m.MissLatencyUS)
	}
	for _, bp := range rep.Batch {
		fmt.Printf("perf[%s]: batch workers=%d %.0f qps (%.2fx, %.1f pages/q, hit %.1f%%)\n",
			rep.Label, bp.Workers, bp.QPS, bp.Speedup, bp.PagesPerQuery, bp.HitRatio*100)
	}
	for _, bp := range rep.BatchWarm {
		fmt.Printf("perf[%s]: batch-warm workers=%d %.0f qps (%.2fx)\n", rep.Label, bp.Workers, bp.QPS, bp.Speedup)
	}
	for _, sp := range rep.Shards {
		fmt.Printf("perf[%s]: shards=%d workers=%d %.0f qps (%.2fx vs 1 shard, %.1f pages/q, hit %.1f%%)\n",
			rep.Label, sp.Shards, sp.Workers, sp.QPS, sp.SpeedupVs1, sp.PagesPerQuery, sp.HitRatio*100)
	}
	for _, dp := range rep.DegradedSearch {
		fmt.Printf("perf[%s]: degraded %-19s p50=%.0fus p99=%.0fus %.0f qps (%.2f shards answered, achieved p %.3f, %d degraded)\n",
			rep.Label, dp.Config, dp.P50US, dp.P99US, dp.QPS, dp.ShardsAnsweredAvg, dp.AchievedPAvg, dp.DegradedQueries)
	}
	for _, mp := range rep.Mixed {
		fmt.Printf("perf[%s]: mixed workers=%d auto=%-5v %.0f inserts/s, read p99=%.0fus mixed p99=%.0fus (%.2fx; %d freezes, %d flushes, %d compactions)\n",
			rep.Label, mp.Workers, mp.AutoCompact, mp.InsertsPerSec, mp.ReadP99US, mp.MixedP99US, mp.P99Ratio,
			mp.Freezes, mp.Flushes, mp.Compactions)
	}
	if g := rep.Gate; g != nil {
		fmt.Printf("perf[%s]: gate n=%d queries=%d: %.2f pages/query\n", rep.Label, g.N, g.NumQueries, g.PagesPerQuery)
	}
	if rep.Delta != nil {
		fmt.Printf("perf[%s]: vs %s: ns/op %+.1f%%, allocs/op %+.1f%%, B/op %+.1f%%, pages %+.1f%%\n",
			rep.Label, rep.Baseline.Label, rep.Delta.SearchNsPerOpPct, rep.Delta.SearchAllocsPerOpPct,
			rep.Delta.SearchBytesPerOpPct, rep.Delta.SearchPagesPerOpPct)
	}
	fmt.Printf("perf: wrote %s\n", out)
	return nil
}

func runDataset(ctx context.Context, spec dataset.Spec, fig string, n, queries int, seed int64, ks []int) error {
	fmt.Printf("\n######## dataset %s ########\n", spec.Name)
	env, err := bench.NewEnv(bench.Config{Spec: spec, N: n, NumQueries: queries, Seed: seed})
	if err != nil {
		return err
	}
	defer env.Close()
	fmt.Printf("n=%d d=%d queries=%d page=%dB m=%d\n",
		len(env.Data), spec.D, len(env.Queries), spec.PageSize, spec.M)

	wantSweep := fig == "all" || fig == "4" || fig == "5" || fig == "6" || fig == "7" || fig == "8" || fig == "9"
	if wantSweep {
		builts, err := env.BuildAll(nil)
		if err != nil {
			return err
		}
		defer func() {
			for _, b := range builts {
				b.Method.Close()
			}
		}()
		fig4 := bench.Fig4(env, builts)
		if fig == "all" || fig == "4" {
			fmt.Println()
			fig4.Fprint(os.Stdout)
		}
		if fig != "4" {
			tables, err := bench.Sweep(env, builts, ks)
			if err != nil {
				return err
			}
			want := map[string]int{"5": 0, "6": 1, "7": 2, "8": 3, "9": 4}
			if idx, ok := want[fig]; ok {
				fmt.Println()
				tables[idx].Fprint(os.Stdout)
			} else { // all
				for _, t := range tables {
					fmt.Println()
					t.Fprint(os.Stdout)
				}
			}
		}
	}

	if fig == "all" || fig == "10" {
		t, err := bench.Fig10(env, []float64{0.7, 0.8, 0.9}, 10)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "11" {
		t, err := bench.Fig11(env, []float64{0.3, 0.5, 0.7, 0.9}, 10)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "table2" {
		base := bench.Config{Spec: spec, NumQueries: min(queriesOrDefault(queries), 20), Seed: seed}
		nBase := len(env.Data)
		t, err := bench.Table2Scaling(base, []int{nBase / 4, nBase / 2, nBase}, 10)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "concurrency" {
		// Warm in-RAM curve and the disk-resident model (small pool + the
		// paper's per-page cost as miss latency) side by side: the second
		// is where worker scaling is expected, and the per-worker
		// pages/query, hit%, and speedup columns say why when it is not.
		t, err := bench.Concurrency(ctx, env, []int{1, 2, 4, 8}, 10, 3, 0)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
		t2, err := bench.Concurrency(ctx, env, []int{1, 2, 4, 8}, 10, 1, bench.DiskModelMissLatency)
		if err != nil {
			return err
		}
		fmt.Println()
		t2.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "shards" {
		t, err := bench.ShardScaling(ctx, env, []int{1, 2, 4, 8}, 10, 8, 3)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "degraded" {
		t, err := bench.DegradedSearch(ctx, env, 4, 10)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "repl" {
		t, err := bench.ReplTransport(ctx, env, 2, 5, 50)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "updates" {
		t, err := bench.MixedWorkload(ctx, env, []int{1, 4, 8}, 10)
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
	}
	if fig == "all" || fig == "ablations" {
		t, err := bench.AblationQuickProbe(env, []int{10, 50, 100})
		if err != nil {
			return err
		}
		fmt.Println()
		t.Fprint(os.Stdout)
		t2, err := bench.AblationPartition(env, []int{10, 50, 100})
		if err != nil {
			return err
		}
		fmt.Println()
		t2.Fprint(os.Stdout)
		t3, err := bench.AblationProjDim(env, []int{4, 6, 8, 10}, 10)
		if err != nil {
			return err
		}
		fmt.Println()
		t3.Fprint(os.Stdout)
	}
	return nil
}

func queriesOrDefault(q int) int {
	if q <= 0 {
		return 100
	}
	return q
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
