// Command datagen writes the synthetic benchmark datasets (Table III
// analogues) to disk in the repository's vector-file format, and prints
// the Table III summary.
//
// Usage:
//
//	datagen -summary
//	datagen -dataset Netflix -n 0 -seed 1 -out netflix.pds
//	datagen -dataset Netflix -queries 100 -seed 1 -out netflix-q.pds
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"promips/dataset"
)

func main() {
	name := flag.String("dataset", "", "dataset name (Netflix, Yahoo, P53, Sift)")
	n := flag.Int("n", 0, "points to generate (0 = dataset default)")
	queries := flag.Int("queries", 0, "generate a query workload of this size instead of data")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file")
	summary := flag.Bool("summary", false, "print the Table III dataset summary and exit")
	flag.Parse()

	if *summary {
		printSummary()
		return
	}
	if *name == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: need -dataset and -out (or -summary)")
		os.Exit(2)
	}
	spec, err := dataset.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	var data [][]float32
	if *queries > 0 {
		data = spec.Queries(*queries, *seed)
	} else {
		data = spec.Generate(*n, *seed)
	}
	if err := dataset.WriteFile(*out, data); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d x %d vectors to %s\n", len(data), len(data[0]), *out)
}

func printSummary() {
	fmt.Println("Table III: datasets (paper sizes; generated analogues scaled)")
	fmt.Printf("%-8s %10s %6s %12s %10s %10s %3s\n", "Name", "paper-n", "paper-d", "paper-size", "gen-n", "gen-d", "m")
	for _, s := range dataset.Specs() {
		paperBytes := float64(s.FullN) * float64(s.FullD) * 4 / (1 << 20)
		fmt.Printf("%-8s %10d %6d %9.1fMB %10d %10d %3d\n",
			s.Name, s.FullN, s.FullD, paperBytes, s.DefaultN, s.D, s.M)
	}
	// Show a sample norm to confirm generators are alive.
	sample := dataset.Netflix().Generate(1, 1)
	var n2 float64
	for _, x := range sample[0] {
		n2 += float64(x) * float64(x)
	}
	fmt.Printf("\nsample Netflix vector norm: %.3f\n", math.Sqrt(n2))
}
