package main

import "math/rand"

// newRand isolates the deprecated-free construction of a seeded generator.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
