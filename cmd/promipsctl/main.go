// Command promipsctl builds, inspects, queries and maintains ProMIPS
// indexes from the command line, entirely through the public promips API.
//
// Usage:
//
//	promipsctl build   -data vectors.pds -dir ./idx [-c 0.9 -p 0.5 -m 0 -page 4096]
//	promipsctl query   -dir ./idx -data vectors.pds [-k 10 -queries 5 -seed 1 -c 0 -p 0]
//	promipsctl compact -dir ./idx
//	promipsctl stats   -dir ./idx
//	promipsctl recover -dir ./idx [-commit]
//	promipsctl snapshot -from ./idx|http://host:port -dir ./replica
//	promipsctl promote -addr http://host:port | -dir ./replica -primary ./idx|http://host:port
//
// snapshot bootstraps a replica directory as a copy of a primary —
// either an index directory on a shared filesystem or a running
// promipsd's base URL, in which case the shards ship over its
// /v1/repl/* endpoints (CRC-checked; a torn transfer leaves no
// manifest and is safely re-runnable).
//
// promote fails a replica over to writable primary after its primary
// dies: online against a running promipsd follower (-addr, via POST
// /v1/promote), or offline against a replica directory (-dir/-primary):
// the remaining journal tails are drained from the dead primary —
// -primary takes a directory or a base URL, and a dead primary that
// serves nothing simply has nothing left to drain — and the manifest
// epoch is fenced so a resurrected old primary is refused.
//
// Vector files use the datagen format (see cmd/datagen).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"promips"
	"promips/client"
	"promips/dataset"
	"promips/shard"
)

// ctlIndex is the surface the read-side subcommands need; satisfied by
// both *promips.Index and *shard.Index, so every subcommand works on
// either layout.
type ctlIndex interface {
	Search(ctx context.Context, q []float32, k int, opts ...promips.SearchOption) ([]promips.Result, promips.SearchStats, error)
	Len() int
	LiveCount() int
	Dim() int
	M() int
	JournalLen() int
	Options() promips.Options
	Recovery() promips.RecoveryStats
	CacheStats() promips.CacheStats
	UpdateStats() promips.UpdateStats
	Sizes() promips.SizeBreakdown
	Save() error
	Close() error
}

// openAny opens dir as whichever index layout it holds: the SHARDS
// manifest selects the sharded opener, anything else the single-index one.
func openAny(dir string) (ctlIndex, error) {
	if shard.IsSharded(dir) {
		return shard.Open(dir)
	}
	return promips.Open(dir)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "compact":
		err = runCompact(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "recover":
		err = runRecover(os.Args[2:])
	case "snapshot":
		err = runSnapshot(os.Args[2:])
	case "promote":
		err = runPromote(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promipsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  promipsctl build   -data vectors.pds -dir ./idx [-shards 1 -c 0.9 -p 0.5 -m 0 -page 4096 -seed 1]
  promipsctl query   -dir ./idx -data vectors.pds [-k 10 -queries 5 -seed 1 -c 0 -p 0 -timeout 0]
  promipsctl compact -dir ./idx [-timeout 0]
  promipsctl stats   -dir ./idx [-timeout 0]
  promipsctl recover -dir ./idx [-commit]
  promipsctl snapshot -from ./idx|http://host:port -dir ./replica
  promipsctl promote -addr http://host:port | -dir ./replica -primary ./idx|http://host:port [-timeout 0]`)
}

// timeoutFlag registers the shared -timeout flag: a bound on all the
// index work the subcommand issues (0 = none).
func timeoutFlag(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "abort index operations after this long (0 = no limit)")
}

// opCtx derives the context every index operation of a subcommand runs
// under from its -timeout value.
func opCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dataPath := fs.String("data", "", "vector file (datagen format)")
	dir := fs.String("dir", "", "index directory (created)")
	c := fs.Float64("c", 0.9, "approximation ratio c in (0,1)")
	p := fs.Float64("p", 0.5, "guarantee probability p in (0,1)")
	m := fs.Int("m", 0, "projected dimension (0 = optimized)")
	page := fs.Int("page", 4096, "disk page size in bytes")
	seed := fs.Int64("seed", 1, "random seed")
	shards := fs.Int("shards", 1, "shard count K (K>1 builds a sharded index: parallel fan-out search, per-shard journals)")
	fs.Parse(args)
	if *dataPath == "" || *dir == "" {
		return fmt.Errorf("build requires -data and -dir")
	}
	data, err := dataset.ReadFile(*dataPath)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	start := time.Now()
	indexOpts := promips.Options{C: *c, P: *p, M: *m, PageSize: *page, Seed: *seed}
	var ix ctlIndex
	if *shards > 1 {
		six, err := shard.Build(data, shard.Options{Shards: *shards, Dir: *dir, Index: indexOpts})
		if err != nil {
			return err
		}
		ix = six
	} else {
		indexOpts.Dir = *dir
		uix, err := promips.Build(data, indexOpts)
		if err != nil {
			return err
		}
		ix = uix
	}
	defer ix.Close()
	if err := ix.Save(); err != nil {
		return err
	}
	sz := ix.Sizes()
	fmt.Printf("built index over n=%d d=%d points in %v\n", ix.Len(), ix.Dim(), time.Since(start).Round(time.Millisecond))
	if *shards > 1 {
		fmt.Printf("shards: %d\n", *shards)
	}
	fmt.Printf("projected dimension m=%d\n", ix.M())
	fmt.Printf("index size: %.2f MB (btree %.2f, projected %.2f, quick-probe %.2f, norms %.2f)\n",
		float64(sz.Total())/(1<<20), float64(sz.BTree)/(1<<20), float64(sz.Projected)/(1<<20),
		float64(sz.QuickProbe)/(1<<20), float64(sz.Norms)/(1<<20))
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory")
	dataPath := fs.String("data", "", "vector file to draw queries from")
	k := fs.Int("k", 10, "results per query")
	nq := fs.Int("queries", 5, "number of queries")
	seed := fs.Int64("seed", 1, "query selection seed")
	c := fs.Float64("c", 0, "per-query approximation ratio override (0 = index default)")
	p := fs.Float64("p", 0, "per-query guarantee probability override (0 = index default)")
	timeout := timeoutFlag(fs)
	fs.Parse(args)
	if *dir == "" || *dataPath == "" {
		return fmt.Errorf("query requires -dir and -data")
	}
	ix, err := openAny(*dir)
	if err != nil {
		return err
	}
	defer ix.Close()
	data, err := dataset.ReadFile(*dataPath)
	if err != nil {
		return err
	}
	var opts []promips.SearchOption
	if *c != 0 {
		opts = append(opts, promips.WithC(*c))
	}
	if *p != 0 {
		opts = append(opts, promips.WithP(*p))
	}
	ctx, cancel := opCtx(*timeout)
	defer cancel()
	rng := newRand(*seed)
	for qi := 0; qi < *nq; qi++ {
		q := data[rng.Intn(len(data))]
		start := time.Now()
		res, st, err := ix.Search(ctx, q, *k, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("query %d: %v, %d candidates, %d page accesses, terminated by %s\n",
			qi, time.Since(start).Round(time.Microsecond), st.Candidates, st.PageAccesses, st.TerminatedBy)
		for i, r := range res {
			fmt.Printf("  #%-3d id=%-8d ip=%.4f\n", i+1, r.ID, r.IP)
		}
	}
	return nil
}

func runCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory")
	timeout := timeoutFlag(fs)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("compact requires -dir")
	}
	ctx, cancel := opCtx(*timeout)
	defer cancel()
	if shard.IsSharded(*dir) {
		ix, err := shard.Open(*dir)
		if err != nil {
			return err
		}
		defer ix.Close()
		before := ix.Len()
		start := time.Now()
		remap, err := ix.Compact(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("compacted %d -> %d points across %d shards in %v (ids remapped per shard)\n",
			before, len(remap), ix.Shards(), time.Since(start).Round(time.Millisecond))
		fmt.Printf("index size now %.2f MB\n", float64(ix.Sizes().Total())/(1<<20))
		return nil
	}
	ix, err := promips.Open(*dir)
	if err != nil {
		return err
	}
	defer ix.Close()
	before := ix.Len()
	start := time.Now()
	remap, err := ix.Compact(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("compacted %d -> %d points in %v (ids remapped densely)\n",
		before, len(remap), time.Since(start).Round(time.Millisecond))
	fmt.Printf("index size now %.2f MB\n", float64(ix.Sizes().Total())/(1<<20))
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory")
	dataPath := fs.String("data", "", "optional vector file: exercise the cache with -queries searches before printing counters")
	nq := fs.Int("queries", 0, "queries to run against the live index when -data is given (default 20)")
	seed := fs.Int64("seed", 1, "query selection seed")
	timeout := timeoutFlag(fs)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("stats requires -dir")
	}
	ix, err := openAny(*dir)
	if err != nil {
		return err
	}
	defer ix.Close()
	o := ix.Options()
	sz := ix.Sizes()
	fmt.Printf("points: %d (live %d)  dim: %d  projected m: %d\n", ix.Len(), ix.LiveCount(), ix.Dim(), ix.M())
	if six, ok := ix.(*shard.Index); ok {
		fmt.Printf("shards: %d  per-shard journal: %v\n", six.Shards(), six.JournalLens())
	}
	fmt.Printf("c: %.2f  p: %.2f  page size: %d\n", o.C, o.P, o.PageSize)
	fmt.Printf("index size: %.2f MB\n", float64(sz.Total())/(1<<20))
	fmt.Printf("  btree:       %10d bytes\n", sz.BTree)
	fmt.Printf("  projected:   %10d bytes\n", sz.Projected)
	fmt.Printf("  quick-probe: %10d bytes\n", sz.QuickProbe)
	fmt.Printf("  norms:       %10d bytes\n", sz.Norms)
	fmt.Printf("  pq-sketch:   %10d bytes\n", sz.Sketch)
	if *dataPath != "" {
		data, err := dataset.ReadFile(*dataPath)
		if err != nil {
			return err
		}
		n := *nq
		if n <= 0 {
			n = 20
		}
		rng := newRand(*seed)
		ctx, cancel := opCtx(*timeout)
		defer cancel()
		for qi := 0; qi < n; qi++ {
			if _, _, err := ix.Search(ctx, data[rng.Intn(len(data))], 10); err != nil {
				return err
			}
		}
		fmt.Printf("exercised cache with %d queries\n", n)
	}
	cs := ix.CacheStats()
	fmt.Printf("buffer pool: %d accesses, %d hits (%.1f%%), %d misses, %d evictions, %d writes\n",
		cs.Accesses, cs.Hits, cs.HitRatio()*100, cs.Misses, cs.Evictions, cs.Writes)
	printUpdates(ix)
	printJournal(ix)
	return nil
}

// printUpdates reports the LSM-style update pipeline: how much
// un-compacted data sits in the mutable delta and the frozen segments,
// how many of those segments are crash-durable in their own seg files
// (the watermark background compaction triggers on), and the lifetime
// freeze/flush counters.
func printUpdates(ix ctlIndex) {
	us := ix.UpdateStats()
	if us.DeltaEntries == 0 && us.Segments == 0 && us.Freezes == 0 && us.Tombstones == 0 {
		return // nothing in the update pipeline; keep quiet
	}
	fmt.Printf("updates: delta %d entr%s, %d frozen segment(s) holding %d entr%s (%d flushed to seg files), %d tombstone(s)\n",
		us.DeltaEntries, plural(us.DeltaEntries, "y", "ies"),
		us.Segments, us.SegmentEntries, plural(us.SegmentEntries, "y", "ies"),
		us.FlushedSegments, us.Tombstones)
	if us.Freezes > 0 || us.Flushes > 0 {
		fmt.Printf("         lifetime: %d freeze(s), %d flush(es), %d flush failure(s)\n",
			us.Freezes, us.Flushes, us.FlushFailures)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// printJournal reports the write-ahead journal's state: how many
// acknowledged updates are not yet folded into a Save (summed over
// shards for a sharded index), and what this Open's replay recovered.
func printJournal(ix ctlIndex) {
	if ix.Options().Fsync == promips.FsyncDisabled {
		fmt.Println("journal: disabled (FsyncDisabled)")
		return
	}
	fmt.Printf("journal: %d pending update(s)\n", ix.JournalLen())
	if rec := ix.Recovery(); rec.Replayed > 0 || rec.Skipped > 0 || rec.TruncatedBytes > 0 {
		fmt.Printf("recovery at open: %d update(s) replayed, %d already persisted, %d torn byte(s) truncated\n",
			rec.Replayed, rec.Skipped, rec.TruncatedBytes)
	}
}

// runPromote fails a replica over to writable primary. Online (-addr) it
// asks a running promipsd follower to promote itself in place; offline
// (-dir/-primary) it opens the replica directory, drains the dead
// primary's remaining journal tails, fences the epoch and leaves the
// directory ready to serve as a primary.
func runPromote(args []string) error {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "", "running promipsd follower to promote in place (base URL)")
	dir := fs.String("dir", "", "offline: replica directory to promote")
	primary := fs.String("primary", "", "offline: the dead primary's index directory")
	retries := fs.Int("retries", 2, "client retry budget for the online promote")
	timeout := timeoutFlag(fs)
	fs.Parse(args)
	ctx, cancel := opCtx(*timeout)
	defer cancel()
	switch {
	case *addr != "" && *dir == "" && *primary == "":
		c := client.New(*addr, client.WithRetries(*retries))
		if err := c.Promote(ctx); err != nil {
			return err
		}
		st, err := c.Stats(ctx)
		if err != nil {
			return fmt.Errorf("promoted, but stats unavailable: %w", err)
		}
		fmt.Printf("promoted %s: serving as primary at epoch %d (%d live points)\n", *addr, st.Epoch, st.Live)
		return nil
	case *addr == "" && *dir != "" && *primary != "":
		f, err := shard.OpenFollowerFrom(*dir, ctlReplSource(*primary))
		if err != nil {
			return err
		}
		ix, err := shard.Promote(f)
		if err != nil {
			f.Close()
			return err
		}
		defer ix.Close()
		fmt.Printf("promoted %s: primary at epoch %d, %d live points across %d shards\n",
			*dir, ix.Epoch(), ix.LiveCount(), ix.Shards())
		return nil
	default:
		return fmt.Errorf("promote requires -addr alone (online) or -dir with -primary (offline)")
	}
}

// ctlReplSource resolves a primary operand (-primary, -from): a base URL
// selects the HTTP replication source (promipsd's /v1/repl/* endpoints),
// anything else the shared-filesystem source.
func ctlReplSource(primary string) shard.ReplSource {
	if strings.HasPrefix(primary, "http://") || strings.HasPrefix(primary, "https://") {
		return shard.NewHTTPSource(strings.TrimRight(primary, "/"))
	}
	return shard.NewDirSource(primary)
}

// runSnapshot bootstraps a replica directory from a primary, over
// whichever transport -from names. The manifest is written last, so a
// transfer torn partway leaves a directory promipsd (and a re-run of
// this command, after removing it) treats as empty, never a manifest
// over missing shards.
func runSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	from := fs.String("from", "", "primary to copy (index directory or promipsd base URL)")
	dir := fs.String("dir", "", "replica directory to create")
	fs.Parse(args)
	if *from == "" || *dir == "" {
		return fmt.Errorf("snapshot requires -from and -dir")
	}
	if shard.IsSharded(*dir) {
		return fmt.Errorf("%s already holds a sharded index; snapshot refuses to overwrite it", *dir)
	}
	src := ctlReplSource(*from)
	defer src.Close()
	start := time.Now()
	if err := shard.SnapshotFrom(src, *dir); err != nil {
		return err
	}
	ix, err := shard.Open(*dir)
	if err != nil {
		return fmt.Errorf("snapshot completed but replica does not open: %w", err)
	}
	defer ix.Close()
	fmt.Printf("snapshotted %s -> %s: %d shards, %d live points, epoch %d in %v\n",
		*from, *dir, ix.Shards(), ix.LiveCount(), ix.Epoch(), time.Since(start).Round(time.Millisecond))
	return nil
}

// runRecover opens the index — which IS the recovery procedure: the
// write-ahead journal is replayed on top of the last Save and any torn
// record tail is cleanly truncated — and reports what happened. With
// -commit the recovered state is folded into the metadata (Save), so the
// journal is emptied and the next open is replay-free.
func runRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	dir := fs.String("dir", "", "index directory")
	commit := fs.Bool("commit", false, "persist the recovered state (Save) so the journal is emptied")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("recover requires -dir")
	}
	start := time.Now()
	ix, err := openAny(*dir)
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	defer ix.Close()
	rec := ix.Recovery()
	fmt.Printf("opened in %v: %d points (%d live), journal policy %v\n",
		time.Since(start).Round(time.Millisecond), ix.Len(), ix.LiveCount(), ix.Options().Fsync)
	if six, ok := ix.(*shard.Index); ok {
		fmt.Printf("shards: %d (journal replay is per shard; counts below are summed)\n", six.Shards())
	}
	fmt.Printf("recovery: %d update(s) replayed on top of the last save\n", rec.Replayed)
	fmt.Printf("          %d record(s) already covered by the saved metadata\n", rec.Skipped)
	fmt.Printf("          %d torn byte(s) cleanly truncated from the journal tail\n", rec.TruncatedBytes)
	fmt.Printf("journal now holds %d pending update(s)\n", ix.JournalLen())
	if !*commit {
		if ix.JournalLen() > 0 {
			fmt.Println("run with -commit to fold the recovered updates into the metadata")
		}
		return nil
	}
	if err := ix.Save(); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	fmt.Println("committed: recovered state persisted, journal emptied")
	return nil
}
