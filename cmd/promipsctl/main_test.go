package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"promips"
	"promips/dataset"
)

// The CLI's subcommand helpers are exercised directly: write a dataset
// file, build an index, query it and print stats — the full promipsctl
// round trip without spawning a process.
func TestCLIBuildQueryStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "vectors.pds")
	idxDir := filepath.Join(dir, "idx")

	r := rand.New(rand.NewSource(1))
	data := make([][]float32, 300)
	for i := range data {
		v := make([]float32, 16)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	if err := dataset.WriteFile(dataPath, data); err != nil {
		t.Fatal(err)
	}

	if err := runBuild([]string{"-data", dataPath, "-dir", idxDir, "-m", "5", "-seed", "2"}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := runQuery([]string{"-dir", idxDir, "-data", dataPath, "-k", "5", "-queries", "2"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := runCompact([]string{"-dir", idxDir}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := runQuery([]string{"-dir", idxDir, "-data", dataPath, "-k", "5", "-queries", "2", "-c", "0.8", "-p", "0.7"}); err != nil {
		t.Fatalf("query after compact: %v", err)
	}
	if err := runStats([]string{"-dir", idxDir}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

// TestCLIRecover drives the recovery diagnostics: updates acknowledged
// into the journal but never saved must survive a process "crash" (close
// without save), show up in recover's report, and -commit must fold them
// in so the journal empties.
func TestCLIRecover(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "vectors.pds")
	idxDir := filepath.Join(dir, "idx")

	r := rand.New(rand.NewSource(3))
	data := make([][]float32, 200)
	for i := range data {
		v := make([]float32, 12)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	if err := dataset.WriteFile(dataPath, data); err != nil {
		t.Fatal(err)
	}
	if err := runBuild([]string{"-data", dataPath, "-dir", idxDir, "-m", "5", "-seed", "4"}); err != nil {
		t.Fatalf("build: %v", err)
	}

	// Crash-sim: updates journaled, never saved, fds dropped.
	ix, err := promips.Open(idxDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(data[0]); err != nil {
		t.Fatal(err)
	}
	if !ix.Delete(7) {
		t.Fatal("delete")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	if err := runRecover([]string{"-dir", idxDir}); err != nil {
		t.Fatalf("recover (dry): %v", err)
	}
	if err := runRecover([]string{"-dir", idxDir, "-commit"}); err != nil {
		t.Fatalf("recover -commit: %v", err)
	}
	re, err := promips.Open(idxDir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rec := re.Recovery(); rec.Replayed != 0 {
		t.Fatalf("after commit, open still replays %d", rec.Replayed)
	}
	if re.JournalLen() != 0 {
		t.Fatalf("after commit, journal holds %d", re.JournalLen())
	}
	if re.LiveCount() != 200 {
		t.Fatalf("LiveCount = %d, want 200 (one insert, one delete)", re.LiveCount())
	}
	if err := runStats([]string{"-dir", idxDir}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestCLIMissingFlags(t *testing.T) {
	if err := runBuild([]string{}); err == nil {
		t.Fatal("build without flags should fail")
	}
	if err := runQuery([]string{}); err == nil {
		t.Fatal("query without flags should fail")
	}
	if err := runCompact([]string{}); err == nil {
		t.Fatal("compact without flags should fail")
	}
	if err := runStats([]string{}); err == nil {
		t.Fatal("stats without flags should fail")
	}
	if err := runRecover([]string{}); err == nil {
		t.Fatal("recover without flags should fail")
	}
}

func TestCLIBadDataFile(t *testing.T) {
	dir := t.TempDir()
	if err := runBuild([]string{"-data", filepath.Join(dir, "missing.pds"), "-dir", dir}); err == nil {
		t.Fatal("build with missing data file should fail")
	}
}
