package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"promips/dataset"
)

// The CLI's subcommand helpers are exercised directly: write a dataset
// file, build an index, query it and print stats — the full promipsctl
// round trip without spawning a process.
func TestCLIBuildQueryStatsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "vectors.pds")
	idxDir := filepath.Join(dir, "idx")

	r := rand.New(rand.NewSource(1))
	data := make([][]float32, 300)
	for i := range data {
		v := make([]float32, 16)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	if err := dataset.WriteFile(dataPath, data); err != nil {
		t.Fatal(err)
	}

	if err := runBuild([]string{"-data", dataPath, "-dir", idxDir, "-m", "5", "-seed", "2"}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := runQuery([]string{"-dir", idxDir, "-data", dataPath, "-k", "5", "-queries", "2"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := runCompact([]string{"-dir", idxDir}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := runQuery([]string{"-dir", idxDir, "-data", dataPath, "-k", "5", "-queries", "2", "-c", "0.8", "-p", "0.7"}); err != nil {
		t.Fatalf("query after compact: %v", err)
	}
	if err := runStats([]string{"-dir", idxDir}); err != nil {
		t.Fatalf("stats: %v", err)
	}
}

func TestCLIMissingFlags(t *testing.T) {
	if err := runBuild([]string{}); err == nil {
		t.Fatal("build without flags should fail")
	}
	if err := runQuery([]string{}); err == nil {
		t.Fatal("query without flags should fail")
	}
	if err := runCompact([]string{}); err == nil {
		t.Fatal("compact without flags should fail")
	}
	if err := runStats([]string{}); err == nil {
		t.Fatal("stats without flags should fail")
	}
}

func TestCLIBadDataFile(t *testing.T) {
	dir := t.TempDir()
	if err := runBuild([]string{"-data", filepath.Join(dir, "missing.pds"), "-dir", dir}); err == nil {
		t.Fatal("build with missing data file should fail")
	}
}
