package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"promips"
	"promips/client"
	"promips/shard"
)

// Deterministic chaos harness for the serving stack. One scenario runs the
// canonical failover workload — search → insert → converge replica → kill
// primary → promote → search → insert — through the real HTTP handlers and
// the retry-enabled client, with exactly one fault injected at a chosen
// point. The matrix sweeps that fault point over every round trip of the
// workload in both failure modes a network gives you:
//
//	send: the request never reaches the server (connection refused-like);
//	      nothing executed, the retry is a plain re-send.
//	recv: the server executed the request but the response was lost; the
//	      retry must be deduplicated by the Idempotency-Key or the ack
//	      would be paid for twice (a duplicate insert).
//
// Invariants checked after every scenario, whatever was injected:
//
//   - every acknowledged insert is present in the final state, exactly once
//     (live count is EXACT: initial + number of acked logical inserts);
//   - the follower promoted cleanly and serves both old and new writes;
//   - the directory reopens with no corruption and the same exact state.

const (
	chaosSend = "send"
	chaosRecv = "recv"
)

// flakyRT counts round trips and fails exactly the Nth one (1-based) in
// the configured mode. failAt = 0 never fires — used for the dry run that
// measures how many round trips the fault-free workload makes.
type flakyRT struct {
	inner  http.RoundTripper
	mode   string
	failAt int

	mu    sync.Mutex
	trips int
	fired bool
}

var errChaos = errors.New("chaos: injected network fault")

func (rt *flakyRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	rt.trips++
	fire := rt.failAt > 0 && rt.trips == rt.failAt
	if fire {
		rt.fired = true
	}
	rt.mu.Unlock()
	if fire && rt.mode == chaosSend {
		return nil, errChaos
	}
	resp, err := rt.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if fire && rt.mode == chaosRecv {
		resp.Body.Close() // delivered and executed; the ack is what's lost
		return nil, errChaos
	}
	return resp, nil
}

func (rt *flakyRT) tripCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.trips
}

// chaosWorld is one fresh primary+follower serving stack wired through a
// single flaky transport, so the round-trip counter spans the whole
// workload no matter which server a call targets.
type chaosWorld struct {
	data     [][]float32
	primary  *shard.Index
	follower *shard.Follower
	ph, fh   *server
	ps, fs   *httptest.Server
	rt       *flakyRT
	pc, fc   *client.Client
}

func newChaosWorld(t *testing.T, mode string, failAt int) *chaosWorld {
	t.Helper()
	r := rand.New(rand.NewSource(41))
	w := &chaosWorld{data: testVecs(r, 200, 8)}

	pdir := filepath.Join(t.TempDir(), "primary")
	primary, err := shard.Build(w.data, shard.Options{
		Shards: 2, Dir: pdir, Index: promips.Options{Seed: 42, M: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.primary = primary
	t.Cleanup(func() { primary.Close() })
	if err := primary.Save(); err != nil {
		t.Fatal(err)
	}

	fdir := filepath.Join(t.TempDir(), "replica")
	if err := shard.Snapshot(pdir, fdir); err != nil {
		t.Fatal(err)
	}
	f, err := shard.OpenFollower(fdir, pdir)
	if err != nil {
		t.Fatal(err)
	}
	w.follower = f
	t.Cleanup(func() { f.Close() }) // no-op once promoted

	cfg := serverConfig{searchSlots: 4, updateSlots: 4}
	w.ph = newServer(primary, cfg)
	w.fh = newServer(f, cfg)
	w.ps = httptest.NewServer(w.ph)
	w.fs = httptest.NewServer(w.fh)
	t.Cleanup(w.ps.Close)
	t.Cleanup(w.fs.Close)

	w.rt = &flakyRT{inner: http.DefaultTransport, mode: mode, failAt: failAt}
	hc := &http.Client{Transport: w.rt}
	retry := []client.Option{
		client.WithHTTPClient(hc),
		client.WithRetries(4),
		client.WithBackoff(time.Millisecond, 4*time.Millisecond),
	}
	w.pc = client.New(w.ps.URL, retry...)
	w.fc = client.New(w.fs.URL, retry...)
	return w
}

// run drives the workload and returns the ids of the acknowledged inserts.
// Every client call must succeed: the retry budget (4) strictly exceeds
// the single injected fault, so a failure here is a real bug, not chaos.
func (w *chaosWorld) run(t *testing.T) []uint32 {
	t.Helper()
	ctx := context.Background()
	r := rand.New(rand.NewSource(43))
	v1, v2 := testVecs(r, 2, 8)[0], testVecs(r, 2, 8)[1]

	// Steady state: a search against the primary answers.
	if _, err := w.pc.Search(ctx, client.SearchRequest{Vector: v1, K: 5}); err != nil {
		t.Fatalf("pre-failover search: %v", err)
	}

	// Acknowledged write on the primary.
	id1, err := w.pc.Insert(ctx, v1)
	if err != nil {
		t.Fatalf("pre-failover insert: %v", err)
	}

	// Replica converges (direct poll — replication is not under test here),
	// then the primary dies without warning: listener gone, no Save.
	if _, err := w.follower.Poll(); err != nil {
		t.Fatalf("poll: %v", err)
	}
	if lag, err := w.follower.Lag(); err != nil || lag != 0 {
		t.Fatalf("replica lag %d (err %v) before failover, want 0", lag, err)
	}
	w.ps.Close()

	// Failover: promote the follower over HTTP (this call rides the same
	// flaky transport, so the sweep covers a lost promote ack too).
	if err := w.fc.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// Readiness and the old write survive on the new primary.
	readyz, err := w.fs.Client().Get(w.fs.URL + "/v1/readyz")
	if err != nil || readyz.StatusCode != http.StatusOK {
		t.Fatalf("readyz after promote: %v (status %v)", err, readyz)
	}
	readyz.Body.Close()
	res, err := w.fc.Search(ctx, client.SearchRequest{Vector: v1, K: 5})
	if err != nil {
		t.Fatalf("post-failover search: %v", err)
	}
	if !hasID(res.Results, id1) {
		t.Fatalf("acknowledged pre-failover insert %d missing from post-failover top-5", id1)
	}

	// Writes resume on the new primary.
	id2, err := w.fc.Insert(ctx, v2)
	if err != nil {
		t.Fatalf("post-failover insert: %v", err)
	}
	return []uint32{id1, id2}
}

// verify asserts the exact final state, online and after a clean reopen.
func (w *chaosWorld) verify(t *testing.T, acked []uint32) {
	t.Helper()
	ctx := context.Background()
	want := len(w.data) + len(acked)

	st, err := w.fc.Stats(ctx)
	if err != nil {
		t.Fatalf("final stats: %v", err)
	}
	if st.Live != want {
		t.Fatalf("live = %d, want exactly %d (initial %d + %d acked inserts; more = duplicated retry, fewer = lost ack)",
			st.Live, want, len(w.data), len(acked))
	}
	if st.ReadOnly || st.Epoch == 0 {
		t.Fatalf("promoted server still read_only=%v epoch=%d", st.ReadOnly, st.Epoch)
	}

	// Crash-consistency: shut the promoted server down the polite way and
	// reopen its directory cold.
	promoted, ok := w.fh.cur().(*shard.Index)
	if !ok {
		t.Fatalf("served index after promote is %T, want *shard.Index", w.fh.cur())
	}
	dir := promoted.Dir()
	w.fs.Close()
	if err := promoted.Save(); err != nil {
		t.Fatalf("save promoted: %v", err)
	}
	if err := promoted.Close(); err != nil {
		t.Fatalf("close promoted: %v", err)
	}
	reopened, err := shard.Open(dir)
	if err != nil {
		t.Fatalf("reopen after chaos: %v", err)
	}
	defer reopened.Close()
	if got := reopened.LiveCount(); got != want {
		t.Fatalf("reopened live = %d, want %d", got, want)
	}
	if reopened.Epoch() == 0 {
		t.Fatal("reopened index lost its failover epoch fence")
	}
	// Exact full enumeration: every live point once. This is the strongest
	// form of the no-duplicate / no-loss check — the id set must be exactly
	// the initial ids plus the acked ones, each appearing a single time.
	res, err := reopened.Exact(ctx, w.data[0], want)
	if err != nil {
		t.Fatalf("exact enumeration after reopen: %v", err)
	}
	if len(res) != want {
		t.Fatalf("exact enumeration returned %d ids, want %d", len(res), want)
	}
	seen := make(map[uint32]bool, len(res))
	for _, r := range res {
		if seen[r.ID] {
			t.Fatalf("id %d appears twice in the exact enumeration", r.ID)
		}
		seen[r.ID] = true
	}
	for _, id := range acked {
		if !seen[id] {
			t.Fatalf("acked id %d lost after reopen", id)
		}
	}
}

func hasID(res []promips.Result, id uint32) bool {
	for _, r := range res {
		if r.ID == id {
			return true
		}
	}
	return false
}

// TestChaosMatrix sweeps one injected network fault over every round trip
// of the failover workload, in both send-lost and ack-lost modes.
func TestChaosMatrix(t *testing.T) {
	// Dry run: no fault; measures the workload's round-trip count (before
	// verification's own calls) and checks the harness itself is sound.
	dry := newChaosWorld(t, chaosSend, 0)
	acked := dry.run(t)
	total := dry.rt.tripCount()
	dry.verify(t, acked)
	if total < 5 {
		t.Fatalf("dry run made only %d round trips; harness is not exercising the stack", total)
	}

	for _, mode := range []string{chaosSend, chaosRecv} {
		for n := 1; n <= total; n++ {
			t.Run(fmt.Sprintf("%s/trip%02d", mode, n), func(t *testing.T) {
				w := newChaosWorld(t, mode, n)
				acked := w.run(t)
				if !w.rt.fired {
					t.Fatalf("fault at trip %d never fired (workload made %d trips)", n, w.rt.tripCount())
				}
				w.verify(t, acked)
			})
		}
	}
}

// TestChaosShardFault injects a one-shot per-shard fault (shard.Faults —
// the same injector the shard-layer degraded tests use) into the served
// index while the workload runs: the hit search degrades instead of
// failing, and the write-path invariants are untouched.
func TestChaosShardFault(t *testing.T) {
	for shardIdx := 0; shardIdx < 2; shardIdx++ {
		t.Run(fmt.Sprintf("shard%d", shardIdx), func(t *testing.T) {
			w := newChaosWorld(t, chaosSend, 0)
			w.primary.SetFaults(&shard.Faults{Shard: shardIdx, FailAt: 1})

			// The very first fanned-out search hits the fault and must come
			// back 200 + degraded, not 5xx.
			res, err := w.pc.Search(context.Background(), client.SearchRequest{Vector: w.data[0], K: 5})
			if err != nil {
				t.Fatalf("search with shard fault: %v", err)
			}
			d := res.Stats.Degraded
			if d == nil || d.ShardsAnswered != 1 || len(d.FailedShards) != 1 || d.FailedShards[0] != shardIdx {
				t.Fatalf("degraded stats = %+v, want 1/2 shards answered with shard %d failed", d, shardIdx)
			}

			// Fault spent; the full workload then runs clean on the same world.
			w.verify(t, w.run(t))
		})
	}
}
