package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"promips"
	"promips/client"
	"promips/shard"
)

// index is the serving surface promipsd needs, satisfied by the embedded
// *promips.Index, the sharded *shard.Index, and the read-only
// *shard.Follower (whose mutators return ErrReadOnlyReplica — surfaced
// as 403/CodeReadOnly). The handlers are layout-agnostic; only
// handleStats looks through the interface for shard- and
// replication-specific extras.
type index interface {
	Search(ctx context.Context, q []float32, k int, opts ...promips.SearchOption) ([]promips.Result, promips.SearchStats, error)
	SearchBatch(ctx context.Context, queries [][]float32, k int, opts ...promips.SearchOption) ([][]promips.Result, []promips.SearchStats, error)
	Insert(v []float32) (uint32, error)
	DeleteChecked(id uint32) (bool, error)
	Save() error
	Close() error
	Len() int
	LiveCount() int
	Dim() int
	M() int
	JournalLen() int
	JournalPoisoned() bool
	CacheStats() promips.CacheStats
	Recovery() promips.RecoveryStats
	UpdateStats() promips.UpdateStats
}

// serverConfig sizes the server's admission control and deadlines.
type serverConfig struct {
	// requestTimeout is the default AND maximum per-request deadline;
	// a request's timeout_ms can only shorten it.
	requestTimeout time.Duration
	// searchSlots / updateSlots bound how many searches (Search,
	// SearchBatch) and updates (Insert, Delete, Save) may be in flight;
	// requests beyond the bound are rejected with 429 rather than queued
	// without limit, so a burst degrades loudly instead of accumulating
	// latency. Zero slots reject everything (useful in tests).
	searchSlots, updateSlots int
	// leaseDur enables lease-fenced writes when a primary serves
	// replication: every follower pull re-arms a leaseDur fence, and a
	// primary whose fence lapses refuses writes (503/lease_expired) until
	// a follower pulls again. 0 disables expiry; deposition by a higher
	// failover epoch is enforced regardless.
	leaseDur time.Duration
	// autoCompactMin, when > 0, runs a background compaction scheduler on
	// any writable primary this server serves (including one it promotes
	// mid-run): flushed update segments are folded into the base index
	// once at least autoCompactMin of them accumulate. 0 disables it.
	// Followers never auto-compact — their state must stay a replayable
	// function of the primary's WAL.
	autoCompactMin int
}

// server wires an index behind promipsd's HTTP/JSON endpoints. The served
// index is swappable: /v1/promote replaces a follower with the promoted
// primary in place, without restarting the listener.
type server struct {
	ixMu sync.RWMutex
	ix   index

	cfg serverConfig
	mux *http.ServeMux

	searchGate gate
	updateGate gate
	idem       *idemCache

	// stopPoll (set by main in -follow mode) cancels the replication poll
	// loop; promote calls it before consuming the follower. promoted tells
	// main's shutdown path that the served index is now a primary and must
	// be Saved on exit like any other.
	stopPoll  func()
	promoteMu sync.Mutex
	promoted  atomic.Bool

	// lease fences the write path of a replicated primary (nil until
	// enableRepl). pollFails mirrors the supervisor's consecutive poll
	// failure count into /v1/stats. replOn guards the one-shot /v1/repl/
	// mux registration (a promoted follower mounts it mid-run).
	lease     atomic.Pointer[leaseGuard]
	pollFails atomic.Int64
	replOn    atomic.Bool

	// compactor is the background compaction scheduler (nil unless
	// -auto-compact > 0 and a writable primary is being served). Started
	// by main for a primary, or by promoteNow when a follower takes over;
	// main's drain path must Stop it before Save (a Save concurrent with
	// a compaction handover is safe but wasteful — the fold would be
	// redone against the new generation).
	compactor atomic.Pointer[promips.AutoCompactor]

	// quarantined is set by the auto-failover supervisor while it waits
	// out the suspect primary's lease. During quarantine /v1/readyz and
	// /v1/stats must not issue remote Lag reads: the primary is probably
	// dead (each read would hang a probe for the full request timeout) —
	// and if it is slow-but-alive, even metadata pulls against it are
	// pulls the quarantine promised not to make.
	quarantined atomic.Bool
}

// cur returns the currently served index.
func (s *server) cur() index {
	s.ixMu.RLock()
	defer s.ixMu.RUnlock()
	return s.ix
}

func (s *server) setCur(ix index) {
	s.ixMu.Lock()
	s.ix = ix
	s.ixMu.Unlock()
}

// gate is a counting semaphore used as bounded admission control:
// TryEnter claims a slot without blocking; a full gate means 429.
type gate chan struct{}

func (g gate) TryEnter() bool {
	select {
	case g <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g gate) Leave() { <-g }

func newServer(ix index, cfg serverConfig) *server {
	if cfg.requestTimeout <= 0 {
		cfg.requestTimeout = 5 * time.Second
	}
	s := &server{
		ix:         ix,
		cfg:        cfg,
		mux:        http.NewServeMux(),
		searchGate: make(gate, cfg.searchSlots),
		updateGate: make(gate, cfg.updateSlots),
		idem:       newIdemCache(4096),
	}
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/searchbatch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("POST /v1/delete", s.handleDelete)
	s.mux.HandleFunc("POST /v1/save", s.handleSave)
	s.mux.HandleFunc("POST /v1/promote", s.handlePromote)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// enableRepl mounts the replication wire for the primary tree at dir and
// arms its lease guard. Called at startup for a primary, and again (for
// the replica's own directory) when a follower promotes — at most once
// per process; later calls are ignored.
func (s *server) enableRepl(dir string) {
	if !s.replOn.CompareAndSwap(false, true) {
		return
	}
	s.lease.Store(newLeaseGuard(dir, s.cfg.leaseDur))
	s.mux.Handle("GET /v1/repl/", shard.NewReplHandler(dir, s.replPull))
}

// replPull vets one replication pull: only a writable sharded primary
// serves history; the lease guard renews the write lease on the bound
// auto-promoter's history pulls (metadata reads and plain replicas'
// pulls are lease-neutral) — or deposes this primary, if the peer's
// lineage epoch proves a completed failover elsewhere.
func (s *server) replPull(pull shard.ReplPull) error {
	ix, ok := s.cur().(*shard.Index)
	if !ok {
		return errors.New("not serving a writable sharded primary")
	}
	if g := s.lease.Load(); g != nil {
		return g.served(pull, ix.Epoch())
	}
	return nil
}

// startAutoCompact launches the background compaction scheduler for ix if
// -auto-compact is configured and ix is a writable primary (embedded or
// sharded). Followers are skipped: a replica's state must stay a
// replayable function of its primary's WAL, and compaction reassigns ids.
// At most one scheduler runs; a leftover one (possible only if promotion
// raced a restart path) is stopped first.
func (s *server) startAutoCompact(ix index) {
	if s.cfg.autoCompactMin <= 0 {
		return
	}
	var c *promips.AutoCompactor
	switch t := ix.(type) {
	case *promips.Index:
		c = t.StartAutoCompact(s.cfg.autoCompactMin)
	case *shard.Index:
		c = t.StartAutoCompact(s.cfg.autoCompactMin)
	default:
		return
	}
	if old := s.compactor.Swap(c); old != nil {
		old.Stop()
	}
	log.Printf("auto-compact: folding flushed segments at watermark %d", s.cfg.autoCompactMin)
}

// stopAutoCompact halts the scheduler (if any) and waits for an in-flight
// compaction to unwind. Called by main's drain path before Save/Close.
func (s *server) stopAutoCompact() {
	if c := s.compactor.Swap(nil); c != nil {
		c.Stop()
	}
}

// writeAllowed gates the update path behind the lease fence (no-op for
// unreplicated primaries and for followers, whose mutators refuse on
// their own).
func (s *server) writeAllowed() error {
	if g := s.lease.Load(); g != nil {
		return g.checkWrite()
	}
	return nil
}

// reqCtx derives the request's working context: the server's configured
// timeout, shortened (never extended) by the request's timeout_ms.
func (s *server) reqCtx(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	d := s.cfg.requestTimeout
	if timeoutMs > 0 {
		if rd := time.Duration(timeoutMs) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// statusFor maps the promips error taxonomy onto wire codes. Retryable
// means a later identical request is expected to succeed: a poisoned
// journal heals at the next Save, a deadline may be a transient stall, a
// full queue drains.
func statusFor(err error) (status int, code string, retryable bool) {
	switch {
	case errors.Is(err, promips.ErrJournalPoisoned):
		return http.StatusServiceUnavailable, client.CodeJournalPoisoned, true
	case errors.Is(err, promips.ErrDimMismatch):
		return http.StatusBadRequest, client.CodeDimMismatch, false
	case errors.Is(err, promips.ErrEmptyIndex):
		return http.StatusUnprocessableEntity, client.CodeEmptyIndex, false
	case errors.Is(err, promips.ErrClosed):
		return http.StatusServiceUnavailable, client.CodeClosed, false
	case errors.Is(err, promips.ErrReadOnlyReplica):
		return http.StatusForbidden, client.CodeReadOnly, false
	case errors.Is(err, promips.ErrStalePrimary):
		return http.StatusConflict, client.CodeStalePrimary, false
	case errors.Is(err, errLeaseExpired):
		return http.StatusServiceUnavailable, client.CodeLeaseExpired, true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, client.CodeDeadline, true
	default:
		return http.StatusInternalServerError, client.CodeInternal, false
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status, code, retryable := statusFor(err)
	if status >= 500 {
		log.Printf("promipsd: %s: %v", code, err)
	}
	// A retryable 503 (journal_poisoned waiting on a Save, a closing
	// server) carries the same back-off hint the 429 path sends, so
	// clients pace their retries instead of hammering.
	if status == http.StatusServiceUnavailable && retryable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, client.ErrorBody{Error: err.Error(), Code: code, Retryable: retryable})
}

func writeQueueFull(w http.ResponseWriter, what string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, client.ErrorBody{
		Error:     fmt.Sprintf("%s admission queue is full", what),
		Code:      client.CodeQueueFull,
		Retryable: true,
	})
}

// decode parses the JSON body into v, rejecting trailing garbage.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

func writeBadRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, client.ErrorBody{Error: "bad request: " + err.Error(), Code: client.CodeBadRequest})
}

func searchOpts(c, p float64, workers int) []promips.SearchOption {
	var opts []promips.SearchOption
	if c != 0 {
		opts = append(opts, promips.WithC(c))
	}
	if p != 0 {
		opts = append(opts, promips.WithP(p))
	}
	if workers > 0 {
		opts = append(opts, promips.WithWorkers(workers))
	}
	return opts
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req client.SearchRequest
	if err := decode(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	if !s.searchGate.TryEnter() {
		writeQueueFull(w, "search")
		return
	}
	defer s.searchGate.Leave()
	ctx, cancel := s.reqCtx(r, req.TimeoutMs)
	defer cancel()
	res, stats, err := s.cur().Search(ctx, req.Vector, req.K, searchOpts(req.C, req.P, 0)...)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, client.SearchResponse{Results: res, Stats: stats})
}

func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req client.BatchRequest
	if err := decode(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	if !s.searchGate.TryEnter() {
		writeQueueFull(w, "search")
		return
	}
	defer s.searchGate.Leave()
	ctx, cancel := s.reqCtx(r, req.TimeoutMs)
	defer cancel()
	res, stats, err := s.cur().SearchBatch(ctx, req.Vectors, req.K, searchOpts(req.C, req.P, req.Workers)...)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, client.BatchResponse{Results: res, Stats: stats})
}

// withIdempotency runs fn once per Idempotency-Key: duplicate attempts
// (lost acks, concurrent retries) replay the first successful response
// instead of re-executing the update. Requests without a key run directly.
func (s *server) withIdempotency(w http.ResponseWriter, r *http.Request, fn func(w http.ResponseWriter)) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		fn(w)
		return
	}
	e, leader := s.idem.begin(key)
	if !leader {
		<-e.done
		replayJSON(w, e.status, e.body)
		return
	}
	cw := &captureWriter{ResponseWriter: w}
	defer func() { s.idem.finish(key, e, cw.status, cw.buf.Bytes()) }()
	fn(cw)
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req client.InsertRequest
	if err := decode(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	s.withIdempotency(w, r, func(w http.ResponseWriter) {
		if !s.updateGate.TryEnter() {
			writeQueueFull(w, "update")
			return
		}
		defer s.updateGate.Leave()
		if err := s.writeAllowed(); err != nil {
			writeErr(w, err)
			return
		}
		// Insert has no ctx parameter: durability is bounded by the journal's
		// group commit, not by a scan. The request deadline still applies to
		// admission (the gate) — an insert that entered is run to completion,
		// because a half-acknowledged update helps nobody.
		id, err := s.cur().Insert(req.Vector)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, client.InsertResponse{ID: id})
	})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req client.DeleteRequest
	if err := decode(r, &req); err != nil {
		writeBadRequest(w, err)
		return
	}
	s.withIdempotency(w, r, func(w http.ResponseWriter) {
		if !s.updateGate.TryEnter() {
			writeQueueFull(w, "update")
			return
		}
		defer s.updateGate.Leave()
		if err := s.writeAllowed(); err != nil {
			writeErr(w, err)
			return
		}
		deleted, err := s.cur().DeleteChecked(req.ID)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, client.DeleteResponse{Deleted: deleted})
	})
}

func (s *server) handleSave(w http.ResponseWriter, r *http.Request) {
	if !s.updateGate.TryEnter() {
		writeQueueFull(w, "update")
		return
	}
	defer s.updateGate.Leave()
	// Save is deliberately NOT lease-fenced: it persists already-acknowledged
	// state without adding records, and it is the recovery action for a
	// poisoned journal — fencing it would wedge a partitioned primary.
	// Deposition still blocks it (a deposed primary must stop moving its
	// journal epochs, or its followers-of-record would refresh onto a
	// fenced lineage).
	if g := s.lease.Load(); g != nil {
		if err := g.checkWrite(); errors.Is(err, promips.ErrStalePrimary) {
			writeErr(w, err)
			return
		}
	}
	if err := s.cur().Save(); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// handlePromote turns a served follower into the writable primary (see
// shard.Promote): stop the poll loop, drain what remains of the dead
// primary's journals, fence the epoch, swap the served index in place.
// Idempotent at the HTTP layer: once this process has promoted, a retry
// of the promote (its ack may have been lost in flight) re-acknowledges
// success; promoting a server that was never a follower answers
// 409/not_follower.
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	err := s.promoteNow("manual /v1/promote")
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, struct{}{})
	case errors.Is(err, errNotFollower):
		writeJSON(w, http.StatusConflict, client.ErrorBody{
			Error: "this server is not running a follower replica",
			Code:  client.CodeNotFollower,
		})
	default:
		writeErr(w, err)
	}
}

// errNotFollower: promotion asked of a server that never ran a follower.
var errNotFollower = errors.New("not a follower")

// promoteNow is the promotion core, shared by the /v1/promote handler and
// the auto-failover supervisor: stop the poll loop, drain what remains of
// the dead primary's journals, fence the epoch, swap the served index in
// place, and start serving replication (with a fresh lease guard) for the
// new lineage so surviving replicas can re-point here. Idempotent: once
// this process has promoted, later calls succeed as no-ops (a retried
// promote's ack may have been lost in flight).
func (s *server) promoteNow(why string) error {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	f, ok := s.cur().(*shard.Follower)
	if !ok {
		if s.promoted.Load() {
			return nil
		}
		return errNotFollower
	}
	if s.stopPoll != nil {
		s.stopPoll() // no new polls; an in-flight one serializes with Promote
	}
	promoted, err := shard.Promote(f)
	if err != nil {
		return err
	}
	s.setCur(promoted)
	s.promoted.Store(true)
	s.pollFails.Store(0)
	s.quarantined.Store(false)
	s.enableRepl(promoted.Dir())
	// The promoted primary owns its lineage now, so background compaction
	// (if configured) is safe — and wanted, since the replica may have
	// accumulated flushed segments through WAL replay.
	s.startAutoCompact(promoted)
	log.Printf("promoted (%s): serving as primary at epoch %d (%d live points)", why, promoted.Epoch(), promoted.LiveCount())
	return nil
}

// handleReadyz is the readiness probe — distinct from /healthz liveness: a
// follower that is alive but not yet converged (lag > 0, or its primary
// unreadable) is NOT ready to serve reads that expect the primary's
// acknowledged state. A primary (including a freshly promoted one) is
// ready whenever it is serving.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	cur := s.cur()
	// A primary whose journal writer is poisoned acknowledges nothing: it
	// is alive (healthz) and can serve reads, but a load balancer routing
	// writes here gets only 503s until a Save heals the journal. Surface
	// that at readiness, with the same pacing hint the write path sends.
	if _, isFollower := cur.(*shard.Follower); !isFollower && cur.JournalPoisoned() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, client.ErrorBody{
			Error:     "not ready: journal poisoned; updates refused until a save heals it",
			Code:      client.CodeJournalPoisoned,
			Retryable: true,
		})
		return
	}
	if f, ok := cur.(*shard.Follower); ok {
		// A quarantining follower answers from local state: reaching out to
		// the suspect primary would hang the probe — and re-arm the lease
		// the quarantine is waiting out, were the primary slow-but-alive.
		if s.quarantined.Load() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, client.ErrorBody{
				Error: "not ready: primary suspect, failover quarantine in progress", Code: client.CodeNotReady, Retryable: true,
			})
			return
		}
		lag, err := f.Lag()
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, client.ErrorBody{
				Error: fmt.Sprintf("not ready: primary unreadable: %v", err), Code: client.CodeNotReady, Retryable: true,
			})
			return
		}
		if lag != 0 {
			writeJSON(w, http.StatusServiceUnavailable, client.ErrorBody{
				Error: fmt.Sprintf("not ready: replica lag %d", lag), Code: client.CodeNotReady, Retryable: true,
			})
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cur := s.cur()
	resp := client.StatsResponse{
		Points:     cur.Len(),
		Live:       cur.LiveCount(),
		Dim:        cur.Dim(),
		M:          cur.M(),
		JournalLen: cur.JournalLen(),
		Cache:      cur.CacheStats(),
		Recovery:   cur.Recovery(),
	}
	switch ix := cur.(type) {
	case *shard.Index:
		resp.Shards = ix.Shards()
		resp.ShardJournalLens = ix.JournalLens()
		resp.Epoch = ix.Epoch()
	case *shard.Follower:
		resp.Shards = ix.Shards()
		resp.ShardJournalLens = ix.JournalLens()
		resp.Epoch = ix.Epoch()
		resp.ReadOnly = true
		rep := &client.ReplicationStats{
			Watermarks:          ix.Watermarks(),
			Refreshes:           ix.Refreshes(),
			ConsecutiveFailures: s.pollFails.Load(),
			Source:              ix.Source(),
			Quarantined:         s.quarantined.Load(),
		}
		if rep.Quarantined {
			rep.Lag = -1 // no remote reads against a quarantined primary
		} else if lag, err := ix.Lag(); err == nil {
			rep.Lag = lag
		} else {
			rep.Lag = -1 // primary unreadable right now
		}
		resp.Replication = rep
	}
	us := cur.UpdateStats()
	resp.Updates = &us
	if g := s.lease.Load(); g != nil {
		st := g.state()
		resp.Lease = &client.LeaseStats{
			Attached:    st.attached,
			Expired:     st.expired,
			Deposed:     st.deposed,
			Grantor:     st.grantor,
			RemainingMs: st.remaining.Milliseconds(),
			DriftMs:     st.drift.Milliseconds(),
		}
	}
	if c := s.compactor.Load(); c != nil {
		resp.AutoCompact = &client.AutoCompactStats{
			MinFlushed: s.cfg.autoCompactMin,
			Runs:       c.Runs(),
			Failures:   c.Failures(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
