package main

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"promips"
	"promips/shard"
)

func historyPull(promoter string) shard.ReplPull {
	return shard.ReplPull{PeerEpoch: shard.UnstampedEpoch, Promoter: promoter, History: true}
}

func metadataPull(promoter string) shard.ReplPull {
	return shard.ReplPull{PeerEpoch: shard.UnstampedEpoch, Promoter: promoter, History: false}
}

// TestLeaseMetadataPullsNeverArmOrRenew: the reason a load balancer can
// scrape a quarantining follower's /v1/readyz (which proxies ShardState
// reads to the primary) without re-arming the old primary's lease — only
// history pulls touch it.
func TestLeaseMetadataPullsNeverArmOrRenew(t *testing.T) {
	const d = 50 * time.Millisecond
	g := newLeaseGuard(t.TempDir(), d)

	// Metadata pulls do not arm: the guard stays unfenced no matter how
	// many it serves.
	for i := 0; i < 3; i++ {
		if err := g.served(metadataPull("prom-A"), 0); err != nil {
			t.Fatalf("metadata pull: %v", err)
		}
	}
	time.Sleep(d + 20*time.Millisecond)
	if err := g.checkWrite(); err != nil {
		t.Fatalf("writes fenced by metadata-only pulls: %v", err)
	}

	// One history pull arms the lease...
	if err := g.served(historyPull("prom-A"), 0); err != nil {
		t.Fatalf("history pull: %v", err)
	}
	if err := g.checkWrite(); err != nil {
		t.Fatalf("writes fenced under a live lease: %v", err)
	}

	// ...and a stream of metadata pulls (a readyz scraper) must NOT keep
	// it alive: the fence lands on schedule regardless.
	deadline := time.Now().Add(d + 40*time.Millisecond)
	for time.Now().Before(deadline) {
		if err := g.served(metadataPull("prom-A"), 0); err != nil {
			t.Fatalf("metadata pull during countdown: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := g.checkWrite(); !errors.Is(err, errLeaseExpired) {
		t.Fatalf("lease survived on metadata renewals: checkWrite = %v, want errLeaseExpired", err)
	}

	// A history pull from the grantor re-arms it.
	if err := g.served(historyPull("prom-A"), 0); err != nil {
		t.Fatalf("renewing history pull: %v", err)
	}
	if err := g.checkWrite(); err != nil {
		t.Fatalf("writes fenced after renewal: %v", err)
	}
}

// TestLeaseIgnoresAnonymousPulls: pulls without a promoter identity
// (plain read replicas, promipsctl snapshot) are served but never arm the
// lease — any number of them can follow a primary without creating a
// fencing obligation nobody will honor.
func TestLeaseIgnoresAnonymousPulls(t *testing.T) {
	const d = 30 * time.Millisecond
	g := newLeaseGuard(t.TempDir(), d)
	if err := g.served(historyPull(""), 0); err != nil {
		t.Fatalf("anonymous history pull: %v", err)
	}
	time.Sleep(d + 20*time.Millisecond)
	if err := g.checkWrite(); err != nil {
		t.Fatalf("anonymous pull armed the lease: %v", err)
	}
	if g.expired() {
		t.Fatal("guard reports expired with no promoter ever attached")
	}
}

// TestLeaseSingleAutoPromoter: the lease binds to one promoter identity.
// A second promoter's history pulls are refused while the bound lease is
// live (two independent auto-promoters could both fail over — the
// topology the refusal enforces against), and may bind once it expires
// (an auto-promoting follower that restarted under a fresh identity).
func TestLeaseSingleAutoPromoter(t *testing.T) {
	const d = 60 * time.Millisecond
	g := newLeaseGuard(t.TempDir(), d)
	if err := g.served(historyPull("prom-A"), 0); err != nil {
		t.Fatalf("first promoter: %v", err)
	}
	err := g.served(historyPull("prom-B"), 0)
	if err == nil {
		t.Fatal("second promoter bound while the first one's lease was live")
	}
	if errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("second-promoter refusal must be transient (503), not a deposition: %v", err)
	}
	// Its metadata reads are still served (harmless, lease-neutral).
	if err := g.served(metadataPull("prom-B"), 0); err != nil {
		t.Fatalf("second promoter metadata pull: %v", err)
	}
	// The grantor keeps renewing through the refusals.
	if err := g.served(historyPull("prom-A"), 0); err != nil {
		t.Fatalf("grantor renewal: %v", err)
	}

	// Once the bound lease expires, the new identity binds...
	time.Sleep(d + 20*time.Millisecond)
	if err := g.served(historyPull("prom-B"), 0); err != nil {
		t.Fatalf("promoter rebind after expiry: %v", err)
	}
	if err := g.checkWrite(); err != nil {
		t.Fatalf("writes fenced after rebind: %v", err)
	}
	// ...and the roles flip: the old identity is now the outsider.
	if err := g.served(historyPull("prom-A"), 0); err == nil {
		t.Fatal("old promoter re-bound while the new one's lease was live")
	}
}

// TestLeasePersistsGrantorAcrossRestart: a crash-restarted primary
// remembers both the fence deadline and which promoter it is bound to.
func TestLeasePersistsGrantorAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	g := newLeaseGuard(dir, time.Hour)
	if err := g.served(historyPull("prom-A"), 0); err != nil {
		t.Fatalf("arm: %v", err)
	}
	b, err := os.ReadFile(filepath.Join(dir, leaseName))
	if err != nil {
		t.Fatalf("LEASE not persisted on bind: %v", err)
	}
	if !strings.HasPrefix(string(b), leaseMagic+"\n") || !strings.Contains(string(b), "prom-A") {
		t.Fatalf("LEASE content %q lacks magic or grantor", b)
	}

	g2 := newLeaseGuard(dir, time.Hour)
	if err := g2.served(historyPull("prom-B"), 0); err == nil {
		t.Fatal("restarted guard forgot its grantor: a different promoter bound under a live lease")
	}
	if err := g2.served(historyPull("prom-A"), 0); err != nil {
		t.Fatalf("restarted guard refused its own grantor: %v", err)
	}
	if err := g2.checkWrite(); err != nil {
		t.Fatalf("writes fenced under the resumed live lease: %v", err)
	}
}

// TestLeaseLegacyFileConservative: a pre-v2 LEASE file (raw 8-byte
// deadline, grantor unknown) resumes the fence and binds to NOBODY — any
// promoter identity is refused until the persisted deadline passes, then
// the first one binds.
func TestLeaseLegacyFileConservative(t *testing.T) {
	dir := t.TempDir()
	var b [8]byte
	deadline := time.Now().Add(80 * time.Millisecond)
	binary.LittleEndian.PutUint64(b[:], uint64(deadline.UnixNano()))
	if err := os.WriteFile(filepath.Join(dir, leaseName), b[:], 0o644); err != nil {
		t.Fatal(err)
	}
	g := newLeaseGuard(dir, 50*time.Millisecond)
	if err := g.served(historyPull("prom-A"), 0); err == nil {
		t.Fatal("promoter bound while a legacy lease of unknown grantor was live")
	}
	time.Sleep(time.Until(deadline) + 20*time.Millisecond)
	if err := g.checkWrite(); !errors.Is(err, errLeaseExpired) {
		t.Fatalf("legacy deadline not enforced: checkWrite = %v", err)
	}
	if err := g.served(historyPull("prom-A"), 0); err != nil {
		t.Fatalf("bind after legacy lease expired: %v", err)
	}
	if err := g.checkWrite(); err != nil {
		t.Fatalf("writes fenced after legacy rebind: %v", err)
	}
}

// TestLeaseDepositionOnAnyPull: a peer epoch above the primary's own
// deposes it from any pull shape — metadata, anonymous, history alike —
// and the deposition outranks lease state permanently.
func TestLeaseDepositionOnAnyPull(t *testing.T) {
	g := newLeaseGuard(t.TempDir(), time.Hour)
	pull := metadataPull("") // weakest pull shape still deposes
	pull.PeerEpoch = 5
	if err := g.served(pull, 1); !errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("outranking peer epoch: got %v, want ErrStalePrimary", err)
	}
	if err := g.checkWrite(); !errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("deposed guard allows writes: %v", err)
	}
	if err := g.served(historyPull("prom-A"), 1); !errors.Is(err, promips.ErrStalePrimary) {
		t.Fatalf("deposed guard served a pull: %v", err)
	}
	if !g.expired() {
		t.Fatal("deposed guard not reported as fencing")
	}
}

// TestValidateAutoPromoteFlags: -auto-promote demands a URL-followed
// primary AND a lease — without the lease there is no fence and a
// partitioned primary would be twinned, not fenced.
func TestValidateAutoPromoteFlags(t *testing.T) {
	base := runConfig{dir: "/tmp/idx", follow: "http://primary:7845", poll: time.Second}
	cases := []struct {
		name string
		mut  func(*runConfig)
		ok   bool
	}{
		{"follower-no-auto", func(c *runConfig) {}, true},
		{"auto-with-lease", func(c *runConfig) { c.autoPromote = true; c.lease = time.Second }, true},
		{"auto-without-lease", func(c *runConfig) { c.autoPromote = true }, false},
		{"auto-dir-followed", func(c *runConfig) { c.autoPromote = true; c.lease = time.Second; c.follow = "/mnt/primary" }, false},
		{"no-dir", func(c *runConfig) { c.dir = "" }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.validate()
			if tc.ok && err != nil {
				t.Fatalf("validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("validate() = nil, want error")
			}
		})
	}
}
