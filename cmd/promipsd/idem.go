package main

import (
	"bytes"
	"net/http"
	"sync"
)

// Idempotency-keyed update dedup. The client stamps every logical
// insert/delete with one Idempotency-Key shared across all its retry
// attempts; the server guarantees that key executes at most once
// successfully. That is what makes "retry on transport error" safe for
// updates: an ack lost on the wire is replayed from this cache instead of
// re-running the insert and assigning a second id.
//
// Semantics:
//
//   - The first attempt for a key is the LEADER and executes the handler;
//     attempts arriving while the leader runs wait and then replay the
//     leader's response byte-for-byte (whatever it was — they are the same
//     logical request, so they get the same answer).
//   - A 2xx outcome stays cached (bounded, FIFO-evicted) and is replayed
//     to later retries of the same key.
//   - A non-2xx outcome is forgotten once delivered: a failure is not an
//     acknowledgement, and the client's next retry with the same key must
//     re-execute, not replay the failure.

type idemEntry struct {
	done   chan struct{} // closed when the leader's outcome is recorded
	status int
	body   []byte
}

type idemCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*idemEntry
	order   []string // completed 2xx keys in completion order, for eviction
}

func newIdemCache(max int) *idemCache {
	return &idemCache{max: max, entries: make(map[string]*idemEntry)}
}

// begin claims key. The leader (second return true) must call finish
// exactly once; a non-leader waits on the entry's done channel and replays
// its status/body.
func (c *idemCache) begin(key string) (*idemEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// finish records the leader's outcome and releases the waiters.
func (c *idemCache) finish(key string, e *idemEntry, status int, body []byte) {
	c.mu.Lock()
	e.status, e.body = status, body
	if status/100 == 2 {
		c.order = append(c.order, key)
		for len(c.order) > c.max {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	} else {
		delete(c.entries, key)
	}
	c.mu.Unlock()
	close(e.done)
}

// captureWriter tees a handler's response so the idempotency cache can
// replay it. Only status and body are retained — enough to reproduce the
// JSON responses the update handlers write.
type captureWriter struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (cw *captureWriter) WriteHeader(code int) {
	if cw.status == 0 {
		cw.status = code
	}
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *captureWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	cw.buf.Write(p)
	return cw.ResponseWriter.Write(p)
}

func replayJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(body)
}
