package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"promips"
	"promips/client"
	"promips/shard"
)

// Network replication chaos. The PR 8 matrix (chaos_test.go) faults the
// CLIENT's round trips; this matrix faults the REPLICATION transport — the
// /v1/repl/* pulls a URL-followed replica lives on — across the supervised
// auto-failover workload: insert → converge over the wire → kill the
// primary (listener gone, no Save) → quarantine-then-promote → insert on
// the new primary. One fault is injected per scenario, at a chosen pull,
// in each of the four failure shapes a replication stream can take:
//
//	send:  the pull never reaches the primary; no lease renewed, nothing
//	       served — the next poll re-pulls from the same offset.
//	recv:  the primary served the pull (and renewed the write lease!) but
//	       the response was lost; the follower's watermark must not move.
//	torn:  the response body is cut mid-stream with intact HTTP framing —
//	       only the CRC (wal chunks, snapshot trailer) or the JSON decoder
//	       can catch it; a torn chunk must not advance the offset.
//	stall: the pull hangs until the follower's per-request deadline; the
//	       poll round fails late instead of fast.
//
// Invariants, whatever was injected: the follower converges (resumable
// offsets — a fault costs a retry, never a refresh of healthy state),
// auto-promotion completes, the final live set is EXACTLY initial + acked
// inserts, the resurrected old primary is already fenced when it comes
// back (lease expired, then deposed by epoch — never two writable
// primaries), and both directories reopen clean.

const (
	netChaosSend  = "send"
	netChaosRecv  = "recv"
	netChaosTorn  = "torn"
	netChaosStall = "stall"
)

const (
	netLease      = 100 * time.Millisecond
	netPoll       = 5 * time.Millisecond
	netReqTimeout = 150 * time.Millisecond
)

// replFaultRT injects exactly one transport fault into the Nth (1-based)
// replication round trip. failAt = 0 never fires (dry run).
type replFaultRT struct {
	inner  http.RoundTripper
	mode   string
	failAt int

	mu    sync.Mutex
	trips int
	fired bool
}

func (rt *replFaultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	rt.trips++
	fire := rt.failAt > 0 && rt.trips == rt.failAt
	if fire {
		rt.fired = true
	}
	rt.mu.Unlock()
	if fire {
		switch rt.mode {
		case netChaosSend:
			return nil, errChaos
		case netChaosStall:
			<-req.Context().Done()
			return nil, req.Context().Err()
		}
	}
	resp, err := rt.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if fire {
		switch rt.mode {
		case netChaosRecv:
			resp.Body.Close() // primary executed the pull; the bytes are lost
			return nil, errChaos
		case netChaosTorn:
			return tearResponse(resp)
		}
	}
	return resp, nil
}

// tearResponse truncates the body to its first half with consistent HTTP
// framing — the cut is invisible to the transport layer, so only content
// checks (CRC, snapshot trailer, JSON completeness) can reject it.
func tearResponse(resp *http.Response) (*http.Response, error) {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b = nil
	}
	half := b[:len(b)/2]
	resp.Body = io.NopCloser(bytes.NewReader(half))
	resp.ContentLength = int64(len(half))
	resp.TransferEncoding = nil
	resp.Header = resp.Header.Clone()
	resp.Header.Set("Content-Length", strconv.Itoa(len(half)))
	resp.Trailer = nil // a cut stream never delivers its trailer
	return resp, nil
}

func (rt *replFaultRT) tripCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.trips
}

// netChaosWorld is a primary and a URL-following replica with NO shared
// filesystem: every byte the replica holds arrived over /v1/repl/*,
// through the flaky transport.
type netChaosWorld struct {
	data      [][]float32
	pdir      string
	primary   *shard.Index
	f         *shard.Follower
	ph, fh    *server
	ps, fs    *httptest.Server
	rt        *replFaultRT
	pc, fc    *client.Client
	baseEpoch int64
}

func newNetChaosWorld(t *testing.T, mode string, failAt int) *netChaosWorld {
	t.Helper()
	r := rand.New(rand.NewSource(61))
	w := &netChaosWorld{data: testVecs(r, 200, 8)}

	w.pdir = filepath.Join(t.TempDir(), "primary")
	primary, err := shard.Build(w.data, shard.Options{
		Shards: 2, Dir: w.pdir, Index: promips.Options{Seed: 42, M: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.primary = primary
	t.Cleanup(func() { primary.Close() })
	if err := primary.Save(); err != nil {
		t.Fatal(err)
	}
	w.baseEpoch = primary.Epoch()

	cfg := serverConfig{searchSlots: 8, updateSlots: 8, leaseDur: netLease}
	w.ph = newServer(primary, cfg)
	w.ph.enableRepl(w.pdir)
	w.ps = httptest.NewServer(w.ph)
	t.Cleanup(w.ps.Close)

	// All replication pulls — bootstrap snapshot included — ride the flaky
	// transport. The faults under test live here, not on the client path.
	// The follower pulls as an auto-promoter: only the promoter's history
	// pulls arm and renew the primary's write lease.
	w.rt = &replFaultRT{inner: http.DefaultTransport, mode: mode, failAt: failAt}
	src := shard.NewHTTPSource(w.ps.URL,
		shard.WithHTTPClient(&http.Client{Transport: w.rt}),
		shard.WithRequestTimeout(netReqTimeout),
		shard.WithSnapshotTimeout(500*time.Millisecond),
		shard.WithPromoter("netchaos-follower"))

	fdir := filepath.Join(t.TempDir(), "replica")
	if err := shard.SnapshotFrom(src, fdir); err != nil {
		// A faulted bootstrap must be detectable (no manifest — IsSharded
		// false) and recoverable by removing the partial tree and retrying.
		if shard.IsSharded(fdir) {
			t.Fatalf("torn bootstrap left a live manifest: %v", err)
		}
		if err := os.RemoveAll(fdir); err != nil {
			t.Fatal(err)
		}
		if err := shard.SnapshotFrom(src, fdir); err != nil {
			t.Fatalf("re-bootstrap after faulted snapshot: %v", err)
		}
	}
	f, err := shard.OpenFollowerFrom(fdir, src)
	if err != nil {
		// The open's manifest read ate the one-shot fault; a retry is clean.
		if f, err = shard.OpenFollowerFrom(fdir, src); err != nil {
			t.Fatalf("reopen follower after faulted manifest read: %v", err)
		}
	}
	w.f = f
	t.Cleanup(func() { f.Close() }) // no-op once promoted

	w.fh = newServer(f, cfg)
	w.fs = httptest.NewServer(w.fh)
	t.Cleanup(w.fs.Close)

	w.pc = client.New(w.ps.URL)
	w.fc = client.New(w.fs.URL)
	return w
}

// insertPrimary writes one vector to the primary, tolerating a fenced
// write path: a setup-phase fault (a stalled snapshot pull, say) can hold
// the replication stream past the lease, and the primary then CORRECTLY
// refuses writes. The documented recovery is a follower pull — it renews
// the lease and writes resume — so that is exactly what the helper does.
func (w *netChaosWorld) insertPrimary(t *testing.T, v []float32) uint32 {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		id, err := w.pc.Insert(context.Background(), v)
		if err == nil {
			return id
		}
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Code != client.CodeLeaseExpired {
			t.Fatalf("insert on primary: %v", err)
		}
		w.f.Poll() // renew the lease (may itself eat the injected fault)
		if time.Now().After(deadline) {
			t.Fatal("primary never resumed writes after lease-renewal pulls")
		}
	}
}

// converge polls until the replica has every acknowledged record. Pull
// errors are exactly the faults under test: the loop retries, and the
// invariant is that the one-shot fault costs at most a retry from the
// same resumable offset.
func (w *netChaosWorld) converge(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for {
		if _, err := w.f.Poll(); err == nil {
			if lag, lerr := w.f.Lag(); lerr == nil && lag == 0 {
				return
			} else if lerr != nil {
				lastErr = lerr
			}
		} else {
			lastErr = err
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged (last error: %v)", lastErr)
		}
	}
}

// run drives the auto-failover workload and returns the acked insert ids.
func (w *netChaosWorld) run(t *testing.T) []uint32 {
	t.Helper()
	ctx := context.Background()
	r := rand.New(rand.NewSource(62))
	vs := testVecs(r, 2, 8)

	// Acknowledged write on the primary, replicated over the wire.
	id1 := w.insertPrimary(t, vs[0])
	w.converge(t)

	// The primary dies without warning: listener gone, journal never folded.
	// (The process state lives on in w.ph/w.primary — it resurfaces later
	// as the partitioned old primary, which must find itself fenced.)
	w.ps.Close()

	// Supervised failover: suspect after 1 failed poll + failed liveness
	// probe, quarantine for τ+lease+margin, then promote. Timings are the
	// test's, the machinery is production's.
	sup := newSupervisor(w.f, w.fh, netPoll, w.ps.URL, true, netLease, 1)
	sup.reqTimeout = 25 * time.Millisecond
	supCtx, cancelSup := context.WithCancel(context.Background())
	t.Cleanup(cancelSup)
	w.fh.stopPoll = cancelSup
	go sup.run(supCtx)

	promoteDeadline := time.Now().Add(30 * time.Second)
	for !w.fh.promoted.Load() {
		if time.Now().After(promoteDeadline) {
			t.Fatal("supervisor never auto-promoted the follower")
		}
		time.Sleep(netPoll)
	}

	// The new primary is ready, writable, and on a fenced-forward epoch.
	readyz, err := http.Get(w.fs.URL + "/v1/readyz")
	if err != nil || readyz.StatusCode != http.StatusOK {
		t.Fatalf("readyz after auto-promote: %v (resp %v)", err, readyz)
	}
	readyz.Body.Close()
	st, err := w.fc.Stats(ctx)
	if err != nil {
		t.Fatalf("stats after auto-promote: %v", err)
	}
	if st.ReadOnly || st.Epoch <= w.baseEpoch {
		t.Fatalf("promoted server read_only=%v epoch=%d (base %d): epoch fence did not advance", st.ReadOnly, st.Epoch, w.baseEpoch)
	}

	id2, err := w.fc.Insert(ctx, vs[1])
	if err != nil {
		t.Fatalf("insert on new primary: %v", err)
	}
	w.verifyOldPrimaryFenced(t, st.Epoch)
	return []uint32{id1, id2}
}

// verifyOldPrimaryFenced resurrects the partitioned old primary's process
// on a fresh listener and proves the no-dual-primary ordering: its write
// lease lapsed during the follower's quarantine — so it was refusing
// writes BEFORE the new primary accepted any — and the first replication
// pull stamped with the new lineage deposes it outright.
func (w *netChaosWorld) verifyOldPrimaryFenced(t *testing.T, newEpoch int64) {
	t.Helper()
	res := httptest.NewServer(w.ph)
	defer res.Close()
	body := `{"vector":[1,0,0,0,0,0,0,0]}`

	assertWriteRefused := func(wantStatus int, wantCode string) {
		t.Helper()
		resp, err := http.Post(res.URL+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("insert on resurrected old primary: %v", err)
		}
		defer resp.Body.Close()
		var eb client.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("decode refusal body: %v", err)
		}
		if resp.StatusCode != wantStatus || eb.Code != wantCode {
			t.Fatalf("old primary write: status %d code %q, want %d %q (a write here would be a dual-primary)",
				resp.StatusCode, eb.Code, wantStatus, wantCode)
		}
	}

	// Lease fence: expired strictly before promotion completed.
	assertWriteRefused(http.StatusServiceUnavailable, client.CodeLeaseExpired)

	// Epoch fence: a pull from the new lineage deposes the old primary...
	req, err := http.NewRequest(http.MethodGet, res.URL+shard.ReplPathManifest, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(shard.ReplHeaderPeerEpoch, strconv.FormatInt(newEpoch, 10))
	pull, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stamped pull on old primary: %v", err)
	}
	pull.Body.Close()
	if pull.StatusCode != http.StatusConflict {
		t.Fatalf("pull stamped epoch %d got %d, want 409 (stale primary refused mid-stream)", newEpoch, pull.StatusCode)
	}

	// ...permanently: writes now refuse as deposed, not merely lease-lapsed.
	assertWriteRefused(http.StatusConflict, client.CodeStalePrimary)
}

// verify asserts the exact final live set on the new primary and that BOTH
// directories reopen clean: the old primary replays its journal (every
// write it acked survives its crash), the new primary holds exactly
// initial + acked, each id once.
func (w *netChaosWorld) verify(t *testing.T, acked []uint32) {
	t.Helper()
	ctx := context.Background()
	want := len(w.data) + len(acked)

	st, err := w.fc.Stats(ctx)
	if err != nil {
		t.Fatalf("final stats: %v", err)
	}
	if st.Live != want {
		t.Fatalf("live = %d, want exactly %d (initial %d + %d acked; more = duplicated pull, fewer = lost acked write)",
			st.Live, want, len(w.data), len(acked))
	}

	// Old primary: crashed with id1 only in its journal; reopen replays it.
	if err := w.primary.Close(); err != nil {
		t.Fatalf("close old primary: %v", err)
	}
	oldIx, err := shard.Open(w.pdir)
	if err != nil {
		t.Fatalf("reopen old primary after crash: %v", err)
	}
	if got := oldIx.LiveCount(); got != len(w.data)+1 {
		oldIx.Close()
		t.Fatalf("old primary reopened with %d live, want %d (acked pre-failover insert must survive its crash)",
			got, len(w.data)+1)
	}
	oldIx.Close()

	// New primary: save, close, reopen cold, enumerate exactly.
	promoted, ok := w.fh.cur().(*shard.Index)
	if !ok {
		t.Fatalf("served index after auto-promote is %T, want *shard.Index", w.fh.cur())
	}
	dir := promoted.Dir()
	w.fs.Close()
	if err := promoted.Save(); err != nil {
		t.Fatalf("save new primary: %v", err)
	}
	if err := promoted.Close(); err != nil {
		t.Fatalf("close new primary: %v", err)
	}
	reopened, err := shard.Open(dir)
	if err != nil {
		t.Fatalf("reopen new primary: %v", err)
	}
	defer reopened.Close()
	if reopened.Epoch() <= w.baseEpoch {
		t.Fatalf("reopened new primary epoch %d did not advance past %d", reopened.Epoch(), w.baseEpoch)
	}
	res, err := reopened.Exact(ctx, w.data[0], want)
	if err != nil {
		t.Fatalf("exact enumeration: %v", err)
	}
	if len(res) != want {
		t.Fatalf("exact enumeration returned %d ids, want %d", len(res), want)
	}
	seen := make(map[uint32]bool, len(res))
	for _, r := range res {
		if seen[r.ID] {
			t.Fatalf("id %d appears twice after reopen", r.ID)
		}
		seen[r.ID] = true
	}
	for _, id := range acked {
		if !seen[id] {
			t.Fatalf("acked id %d lost after reopen", id)
		}
	}
}

// TestNetworkChaosMatrix sweeps one injected replication-transport fault
// over every pull of the auto-failover workload, in all four modes. The
// dry run measures how many pulls the fault-free workload makes up to the
// primary's death; pulls after the death all fail identically (the
// listener is gone), so faulting them adds nothing.
func TestNetworkChaosMatrix(t *testing.T) {
	dry := newNetChaosWorld(t, netChaosSend, 0)
	dry.insertPrimary(t, testVecs(rand.New(rand.NewSource(62)), 2, 8)[0])
	dry.converge(t)
	total := dry.rt.tripCount()
	if total < 6 {
		t.Fatalf("dry run made only %d replication pulls; harness is not exercising the wire", total)
	}

	for _, mode := range []string{netChaosSend, netChaosRecv, netChaosTorn, netChaosStall} {
		for n := 1; n <= total; n++ {
			t.Run(fmt.Sprintf("%s/pull%02d", mode, n), func(t *testing.T) {
				t.Parallel()
				w := newNetChaosWorld(t, mode, n)
				acked := w.run(t)
				if !w.rt.fired {
					t.Fatalf("fault at pull %d never fired (%d pulls made)", n, w.rt.tripCount())
				}
				w.verify(t, acked)
			})
		}
	}
}

// TestNetworkChaosFullWorkloadClean pins the fault-free auto-failover
// workload end to end (the dry world above stops at convergence so its
// pull count excludes post-death noise; this runs the whole thing).
func TestNetworkChaosFullWorkloadClean(t *testing.T) {
	w := newNetChaosWorld(t, netChaosSend, 0)
	w.verify(t, w.run(t))
}
