// Command promipsd serves a promips index over HTTP/JSON.
//
// Endpoints (see the promips/client package for the wire types):
//
//	POST /v1/search       one top-K query
//	POST /v1/searchbatch  one query per vector, server worker pool
//	POST /v1/insert       add a vector (acknowledged = durable)
//	POST /v1/delete       tombstone an id
//	POST /v1/save         persist + truncate the journal (heals a poisoned one)
//	POST /v1/promote      failover: promote a served follower to writable primary
//	GET  /v1/stats        index snapshot (per-shard and replication detail included)
//	GET  /v1/readyz       readiness (a follower is ready only when converged)
//	GET  /healthz         liveness
//
// The directory's layout is auto-detected: a SHARDS manifest serves as a
// sharded index (parallel fan-out search, updates routed by id), anything
// else as a single index. -shards K asserts the expected shard count — a
// deployment guard, not a conversion; shard counts are fixed at build
// time (promipsctl build -shards K).
//
// With -follow PRIMARY_DIR the server runs as a read-only replica: -dir
// is bootstrapped from a snapshot of the primary's directory (when it
// does not already hold one) and then converges by tailing the primary's
// write-ahead journals every -poll, re-snapshotting across Save/Compact
// epochs. Search endpoints serve the replicated state; updates get 403
// with code "read_only". GET /v1/stats reports the replication watermarks
// and lag. When the primary dies, POST /v1/promote fails the replica over
// in place: the poll loop stops, the remaining journal tails are drained,
// the manifest epoch is fenced against the old primary's resurrection,
// and the same process starts accepting writes as the new primary.
//
// Admission is bounded: at most -searchq searches and -updateq updates run
// at once; excess requests get 429 + Retry-After instead of queuing without
// limit. Every request runs under a deadline (-timeout, shortened by the
// request's timeout_ms). On SIGINT/SIGTERM the listener drains in-flight
// requests (up to -drain), then the index is Saved — folding the journal
// into the metadata so the next open replays nothing — and closed. A
// follower skips the Save (its directory is a cache of the primary's
// state) and simply closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"promips"
	"promips/shard"
)

func main() {
	var (
		dir     = flag.String("dir", "", "index directory (required; create one with promipsctl build)")
		addr    = flag.String("addr", "127.0.0.1:7845", "listen address")
		timeout = flag.Duration("timeout", 5*time.Second, "default and maximum per-request deadline")
		searchq = flag.Int("searchq", 64, "max concurrent search requests before 429")
		updateq = flag.Int("updateq", 64, "max concurrent update requests before 429")
		drain   = flag.Duration("drain", 10*time.Second, "shutdown grace for in-flight requests")
		shards  = flag.Int("shards", 0, "assert the index has exactly this shard count (0 = no assertion)")
		follow  = flag.String("follow", "", "run as a read-only replica of this primary index directory")
		poll    = flag.Duration("poll", 500*time.Millisecond, "replication poll interval (with -follow)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "promipsd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, *addr, *timeout, *searchq, *updateq, *drain, *shards, *follow, *poll); err != nil {
		log.Fatalf("promipsd: %v", err)
	}
}

// openIndex resolves -dir (and -follow / -shards) into the serving index
// and reports whether shutdown should Save it.
func openIndex(dir string, shards int, follow string, poll time.Duration, ctx context.Context) (ix index, saveOnExit bool, err error) {
	if follow != "" {
		f, err := openFollower(dir, follow, poll, ctx)
		if err != nil {
			return nil, false, err
		}
		if shards > 0 && f.Shards() != shards {
			f.Close()
			return nil, false, fmt.Errorf("-shards %d asserted but replica has %d", shards, f.Shards())
		}
		return f, false, nil
	}
	if shard.IsSharded(dir) {
		six, err := shard.Open(dir)
		if err != nil {
			return nil, false, fmt.Errorf("open sharded %s: %w", dir, err)
		}
		if shards > 0 && six.Shards() != shards {
			six.Close()
			return nil, false, fmt.Errorf("-shards %d asserted but %s has %d", shards, dir, six.Shards())
		}
		log.Printf("opened %s: %d shards", dir, six.Shards())
		return six, true, nil
	}
	if shards > 1 {
		return nil, false, fmt.Errorf("-shards %d asserted but %s is not a sharded index (build one with promipsctl build -shards)", shards, dir)
	}
	uix, err := promips.Open(dir)
	if err != nil {
		return nil, false, fmt.Errorf("open %s: %w", dir, err)
	}
	return uix, true, nil
}

// openFollower bootstraps (if needed) and opens the replica, converges it
// once, and starts the poll loop, which stops when ctx is cancelled.
func openFollower(dir, primary string, poll time.Duration, ctx context.Context) (*shard.Follower, error) {
	if !shard.IsSharded(dir) {
		log.Printf("replica %s is empty: snapshotting %s", dir, primary)
		if err := shard.Snapshot(primary, dir); err != nil {
			return nil, err
		}
	}
	f, err := shard.OpenFollower(dir, primary)
	if err != nil {
		return nil, err
	}
	if _, err := f.Poll(); err != nil {
		log.Printf("initial poll: %v (will retry)", err)
	}
	lag, _ := f.Lag()
	log.Printf("following %s: %d shards, %d live points, lag %d", primary, f.Shards(), f.LiveCount(), lag)
	go func() {
		t := time.NewTicker(poll)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := f.Poll(); err != nil {
					log.Printf("replication poll: %v", err)
				}
			}
		}
	}()
	return f, nil
}

func run(dir, addr string, timeout time.Duration, searchq, updateq int, drain time.Duration, shards int, follow string, poll time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The poll loop gets its own cancel under the signal context, so
	// /v1/promote can stop replication without tearing the server down.
	pollCtx, stopPoll := context.WithCancel(ctx)
	defer stopPoll()

	ix, saveOnExit, err := openIndex(dir, shards, follow, poll, pollCtx)
	if err != nil {
		return err
	}
	rec := ix.Recovery()
	log.Printf("serving %s: %d live points, dim %d (journal replayed %d)", dir, ix.LiveCount(), ix.Dim(), rec.Replayed)

	h := newServer(ix, serverConfig{
		requestTimeout: timeout,
		searchSlots:    searchq,
		updateSlots:    updateq,
	})
	h.stopPoll = stopPoll
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}

	serveErr := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		serveErr <- srv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		h.cur().Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish, then
	// fold the journal into durable metadata so the next open is replay-free.
	// A follower has nothing of its own to save — its tree mirrors the
	// primary — so it only closes; unless it was promoted mid-run, in which
	// case the served index IS a primary now and saves like one.
	log.Printf("shutting down: draining for up to %s", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	cur := h.cur() // promote may have swapped the served index
	save := saveOnExit || h.promoted.Load()
	if save {
		if err := cur.Save(); err != nil {
			cur.Close()
			return fmt.Errorf("save on shutdown: %w", err)
		}
	}
	if err := cur.Close(); err != nil {
		return fmt.Errorf("close on shutdown: %w", err)
	}
	// ListenAndServe has returned ErrServerClosed by now; anything else is real.
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if save {
		log.Printf("clean shutdown: index saved")
	} else {
		log.Printf("clean shutdown: replica closed")
	}
	return nil
}
