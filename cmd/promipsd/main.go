// Command promipsd serves a promips index over HTTP/JSON.
//
// Endpoints (see the promips/client package for the wire types):
//
//	POST /v1/search       one top-K query
//	POST /v1/searchbatch  one query per vector, server worker pool
//	POST /v1/insert       add a vector (acknowledged = durable)
//	POST /v1/delete       tombstone an id
//	POST /v1/save         persist + truncate the journal (heals a poisoned one)
//	POST /v1/promote      failover: promote a served follower to writable primary
//	GET  /v1/stats        index snapshot (per-shard and replication detail included)
//	GET  /v1/readyz       readiness (a follower is ready only when converged)
//	GET  /healthz         liveness
//
// The directory's layout is auto-detected: a SHARDS manifest serves as a
// sharded index (parallel fan-out search, updates routed by id), anything
// else as a single index. -shards K asserts the expected shard count — a
// deployment guard, not a conversion; shard counts are fixed at build
// time (promipsctl build -shards K).
//
// With -follow PRIMARY the server runs as a read-only replica. PRIMARY is
// either a directory on a shared filesystem or another promipsd's base URL
// (http://host:port) — with a URL the replica needs no filesystem in
// common with its primary: bootstrap snapshots, journal tails and epoch
// refreshes all ship over the primary's /v1/repl/* endpoints, CRC-checked
// and stamped with the failover epoch. -dir is bootstrapped from a
// primary snapshot (when it does not already hold one) and then converges
// by tailing the primary's write-ahead journals every -poll (backing off
// exponentially while the primary is unreachable), re-snapshotting across
// Save/Compact epochs. Search endpoints serve the replicated state;
// updates get 403 with code "read_only". GET /v1/stats reports the
// replication watermarks, lag and consecutive poll failures.
//
// Failover is manual by default: when the primary dies, POST /v1/promote
// fails the replica over in place — the poll loop stops, the remaining
// journal tails are drained, the manifest epoch is fenced against the old
// primary's resurrection, and the same process starts accepting writes as
// the new primary (and starts serving /v1/repl/* for the next replica).
// With -auto-promote (URL-followed primaries only, and -lease required) a
// supervisor does this unattended: after -suspect consecutive poll
// failures AND a failed liveness probe it quarantines the primary — no
// pulls, so no lease renewals, and readiness/stats answer from local
// state — and promotes only after a full request-timeout plus -lease plus
// margin of continued silence. A primary started with -lease fences its
// own write path (503/lease_expired) when its auto-promoting follower has
// not pulled history for that long, which is what makes the unattended
// promotion safe: by the time the new primary can acknowledge a write,
// the partitioned old one has already been refusing them (see DESIGN.md
// for the argument).
//
// Lease topology rules (the fence is only as strong as these):
//
//   - Run at most ONE -auto-promote follower per primary. The lease binds
//     to that follower's identity; a primary refuses history pulls from a
//     second auto-promoter while the lease is live, because two
//     independent promoters could each fail over on their own — no lease
//     can fence them against each other. Plain followers (no
//     -auto-promote) are unlimited: their pulls never touch the lease.
//   - The primary's -lease must be no LARGER than the follower's (same
//     value on both sides is simplest): the follower waits out its own
//     -lease before promoting, so a primary fencing on a longer one could
//     still be acknowledging writes when the promotion commits.
//   - Metadata reads (what Lag, /v1/readyz and /v1/stats scrapes issue)
//     never renew the lease; only wal and snapshot pulls do.
//
// Admission is bounded: at most -searchq searches and -updateq updates run
// at once; excess requests get 429 + Retry-After instead of queuing without
// limit. Every request runs under a deadline (-timeout, shortened by the
// request's timeout_ms). On SIGINT/SIGTERM the listener drains in-flight
// requests (up to -drain), then the index is Saved — folding the journal
// into the metadata so the next open replays nothing — and closed. A
// follower skips the Save (its directory is a cache of the primary's
// state) and simply closes.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"promips"
	"promips/shard"
)

// replRequestTimeout bounds one replication pull over HTTP (τ in the
// failover fencing argument: no pull the follower has given up on can
// still reach the primary after this much quarantine).
const replRequestTimeout = 5 * time.Second

// runConfig carries main's flags into run.
type runConfig struct {
	dir, addr                string
	timeout, drain           time.Duration
	searchq, updateq, shards int
	follow                   string // primary dir or base URL
	poll                     time.Duration
	autoPromote              bool
	lease                    time.Duration
	suspect                  int
	autoCompact              int
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.dir, "dir", "", "index directory (required; create one with promipsctl build)")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7845", "listen address")
	flag.DurationVar(&cfg.timeout, "timeout", 5*time.Second, "default and maximum per-request deadline")
	flag.IntVar(&cfg.searchq, "searchq", 64, "max concurrent search requests before 429")
	flag.IntVar(&cfg.updateq, "updateq", 64, "max concurrent update requests before 429")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "shutdown grace for in-flight requests")
	flag.IntVar(&cfg.shards, "shards", 0, "assert the index has exactly this shard count (0 = no assertion)")
	flag.StringVar(&cfg.follow, "follow", "", "run as a read-only replica of this primary (index directory or promipsd base URL)")
	flag.DurationVar(&cfg.poll, "poll", 500*time.Millisecond, "replication poll interval (with -follow)")
	flag.BoolVar(&cfg.autoPromote, "auto-promote", false, "promote automatically when the followed primary dies (requires -follow URL and -lease; run at most one per primary)")
	flag.DurationVar(&cfg.lease, "lease", 0, "replication write lease: a primary fences writes when its auto-promoting follower has not pulled history for this long; a follower waits it out before auto-promoting (0 = disabled; both sides must set it, primary's no larger than the follower's)")
	flag.IntVar(&cfg.suspect, "suspect", 3, "consecutive poll failures before the primary is suspected dead (with -auto-promote)")
	flag.IntVar(&cfg.autoCompact, "auto-compact", 0, "fold flushed update segments into the base index in the background once this many accumulate (0 = disabled; ids are reassigned by each fold; a follower never auto-compacts, but adopts the setting if promoted)")
	flag.Parse()
	if cfg.dir == "" {
		fmt.Fprintln(os.Stderr, "promipsd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "promipsd: %v\n", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		log.Fatalf("promipsd: %v", err)
	}
}

// validate rejects flag combinations that look runnable but break the
// failover safety argument.
func (cfg runConfig) validate() error {
	if cfg.dir == "" {
		return errors.New("-dir is required")
	}
	if cfg.autoPromote && !isURL(cfg.follow) {
		return errors.New("-auto-promote requires -follow with a primary base URL (the supervisor probes its /healthz)")
	}
	if cfg.autoPromote && cfg.lease <= 0 {
		// Without a lease there is no fence: the follower would promote
		// after a bare timeout while a partitioned-but-alive primary kept
		// acknowledging writes forever — a forked history from a plain
		// misconfiguration. The primary must be started with -lease too
		// (no larger than this value).
		return errors.New("-auto-promote requires -lease > 0: unattended promotion is only safe when the primary fences its writes on replication silence (start the primary with the same -lease)")
	}
	return nil
}

func isURL(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://")
}

// urlOrEmpty returns primary when it is a probeable base URL, "" for a
// directory (no liveness endpoint to probe).
func urlOrEmpty(primary string) string {
	if isURL(primary) {
		return strings.TrimRight(primary, "/")
	}
	return ""
}

// openIndex resolves -dir (and -follow / -shards) into the serving index
// and reports whether shutdown should Save it.
func openIndex(cfg runConfig) (ix index, saveOnExit bool, err error) {
	if cfg.follow != "" {
		promoter := ""
		if cfg.autoPromote {
			promoter = promoterID()
		}
		f, err := openFollower(cfg.dir, cfg.follow, promoter)
		if err != nil {
			return nil, false, err
		}
		if cfg.shards > 0 && f.Shards() != cfg.shards {
			f.Close()
			return nil, false, fmt.Errorf("-shards %d asserted but replica has %d", cfg.shards, f.Shards())
		}
		return f, false, nil
	}
	if shard.IsSharded(cfg.dir) {
		six, err := shard.Open(cfg.dir)
		if err != nil {
			return nil, false, fmt.Errorf("open sharded %s: %w", cfg.dir, err)
		}
		if cfg.shards > 0 && six.Shards() != cfg.shards {
			six.Close()
			return nil, false, fmt.Errorf("-shards %d asserted but %s has %d", cfg.shards, cfg.dir, six.Shards())
		}
		log.Printf("opened %s: %d shards", cfg.dir, six.Shards())
		return six, true, nil
	}
	if cfg.shards > 1 {
		return nil, false, fmt.Errorf("-shards %d asserted but %s is not a sharded index (build one with promipsctl build -shards)", cfg.shards, cfg.dir)
	}
	uix, err := promips.Open(cfg.dir)
	if err != nil {
		return nil, false, fmt.Errorf("open %s: %w", cfg.dir, err)
	}
	return uix, true, nil
}

// replSource builds the replication transport for -follow: an HTTP source
// against another promipsd's base URL, or the shared-filesystem source
// for a directory. An auto-promoting follower identifies itself on every
// pull (promoter != ""), binding the primary's write lease to this
// process; plain replicas stay anonymous and lease-neutral.
func replSource(primary, promoter string) shard.ReplSource {
	if isURL(primary) {
		opts := []shard.HTTPSourceOption{shard.WithRequestTimeout(replRequestTimeout)}
		if promoter != "" {
			opts = append(opts, shard.WithPromoter(promoter))
		}
		return shard.NewHTTPSource(primary, opts...)
	}
	return shard.NewDirSource(primary)
}

// promoterID builds the unique identity an auto-promoting follower pulls
// under: one per process, so a restart binds a fresh lease (within one
// lease of the old one expiring) instead of silently inheriting a
// promise an earlier process made.
func promoterID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails (panics on a broken OS source)
	host, _ := os.Hostname()
	return fmt.Sprintf("%s-%d-%s", host, os.Getpid(), hex.EncodeToString(b[:]))
}

// openFollower bootstraps (if needed) and opens the replica and converges
// it once. The poll loop is the supervisor's, started by run.
func openFollower(dir, primary, promoter string) (*shard.Follower, error) {
	src := replSource(primary, promoter)
	if !shard.IsSharded(dir) {
		log.Printf("replica %s is empty: snapshotting %s", dir, primary)
		if err := shard.SnapshotFrom(src, dir); err != nil {
			return nil, err
		}
	}
	f, err := shard.OpenFollowerFrom(dir, src)
	if err != nil {
		return nil, err
	}
	if _, err := f.Poll(); err != nil {
		log.Printf("initial poll: %v (will retry)", err)
	}
	lag, _ := f.Lag()
	log.Printf("following %s: %d shards, %d live points, lag %d", primary, f.Shards(), f.LiveCount(), lag)
	return f, nil
}

func run(cfg runConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The poll loop gets its own cancel under the signal context, so
	// /v1/promote can stop replication without tearing the server down.
	pollCtx, stopPoll := context.WithCancel(ctx)
	defer stopPoll()

	ix, saveOnExit, err := openIndex(cfg)
	if err != nil {
		return err
	}
	rec := ix.Recovery()
	log.Printf("serving %s: %d live points, dim %d (journal replayed %d)", cfg.dir, ix.LiveCount(), ix.Dim(), rec.Replayed)

	h := newServer(ix, serverConfig{
		requestTimeout: cfg.timeout,
		searchSlots:    cfg.searchq,
		updateSlots:    cfg.updateq,
		leaseDur:       cfg.lease,
		autoCompactMin: cfg.autoCompact,
	})
	h.stopPoll = stopPoll
	switch f := ix.(type) {
	case *shard.Follower:
		// The supervisor owns polling (with failure backoff) and, when
		// -auto-promote is set, the quarantine-then-promote failover.
		// No auto-compact here: it starts only if this follower promotes.
		sup := newSupervisor(f, h, cfg.poll, urlOrEmpty(cfg.follow), cfg.autoPromote, cfg.lease, cfg.suspect)
		go sup.run(pollCtx)
	case *shard.Index:
		// A sharded primary serves the replication wire (and, with -lease,
		// fences its writes on replication silence).
		h.enableRepl(cfg.dir)
		h.startAutoCompact(f)
	default:
		h.startAutoCompact(ix)
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}

	serveErr := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", cfg.addr)
		serveErr <- srv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		h.cur().Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish, then
	// fold the journal into durable metadata so the next open is replay-free.
	// A follower has nothing of its own to save — its tree mirrors the
	// primary — so it only closes; unless it was promoted mid-run, in which
	// case the served index IS a primary now and saves like one.
	log.Printf("shutting down: draining for up to %s", cfg.drain)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	// Stop background compaction before Save: a fold racing the shutdown
	// Save would rebuild a generation the Save is about to supersede, and
	// Stop cancels an in-flight fold's context so the drain stays bounded.
	h.stopAutoCompact()
	cur := h.cur() // promote may have swapped the served index
	save := saveOnExit || h.promoted.Load()
	if save {
		if err := cur.Save(); err != nil {
			cur.Close()
			return fmt.Errorf("save on shutdown: %w", err)
		}
	}
	if err := cur.Close(); err != nil {
		return fmt.Errorf("close on shutdown: %w", err)
	}
	// ListenAndServe has returned ErrServerClosed by now; anything else is real.
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if save {
		log.Printf("clean shutdown: index saved")
	} else {
		log.Printf("clean shutdown: replica closed")
	}
	return nil
}
