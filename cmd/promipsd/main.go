// Command promipsd serves a promips index over HTTP/JSON.
//
// Endpoints (see the promips/client package for the wire types):
//
//	POST /v1/search       one top-K query
//	POST /v1/searchbatch  one query per vector, server worker pool
//	POST /v1/insert       add a vector (acknowledged = durable)
//	POST /v1/delete       tombstone an id
//	POST /v1/save         persist + truncate the journal (heals a poisoned one)
//	GET  /v1/stats        index snapshot
//	GET  /healthz         liveness
//
// Admission is bounded: at most -searchq searches and -updateq updates run
// at once; excess requests get 429 + Retry-After instead of queuing without
// limit. Every request runs under a deadline (-timeout, shortened by the
// request's timeout_ms). On SIGINT/SIGTERM the listener drains in-flight
// requests (up to -drain), then the index is Saved — folding the journal
// into the metadata so the next open replays nothing — and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"promips"
)

func main() {
	var (
		dir     = flag.String("dir", "", "index directory (required; create one with promipsctl build)")
		addr    = flag.String("addr", "127.0.0.1:7845", "listen address")
		timeout = flag.Duration("timeout", 5*time.Second, "default and maximum per-request deadline")
		searchq = flag.Int("searchq", 64, "max concurrent search requests before 429")
		updateq = flag.Int("updateq", 64, "max concurrent update requests before 429")
		drain   = flag.Duration("drain", 10*time.Second, "shutdown grace for in-flight requests")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "promipsd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dir, *addr, *timeout, *searchq, *updateq, *drain); err != nil {
		log.Fatalf("promipsd: %v", err)
	}
}

func run(dir, addr string, timeout time.Duration, searchq, updateq int, drain time.Duration) error {
	ix, err := promips.Open(dir)
	if err != nil {
		return fmt.Errorf("open %s: %w", dir, err)
	}
	rec := ix.Recovery()
	log.Printf("opened %s: %d live points, dim %d (journal replayed %d)", dir, ix.LiveCount(), ix.Dim(), rec.Replayed)

	srv := &http.Server{
		Addr: addr,
		Handler: newServer(ix, serverConfig{
			requestTimeout: timeout,
			searchSlots:    searchq,
			updateSlots:    updateq,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		serveErr <- srv.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		ix.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish, then
	// fold the journal into durable metadata so the next open is replay-free.
	log.Printf("shutting down: draining for up to %s", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := ix.Save(); err != nil {
		ix.Close()
		return fmt.Errorf("save on shutdown: %w", err)
	}
	if err := ix.Close(); err != nil {
		return fmt.Errorf("close on shutdown: %w", err)
	}
	// ListenAndServe has returned ErrServerClosed by now; anything else is real.
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("clean shutdown: index saved")
	return nil
}
