package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"promips"
	"promips/internal/fsutil"
	"promips/shard"
)

// errLeaseExpired fences the write path of a primary whose replication
// lease lapsed: no follower has pulled for longer than the lease, so a
// supervised follower may be promoting right now, and accepting a write
// here could put it on a forked history. Writes resume the moment a
// follower pulls again (re-arming the lease) — or never, if the cluster
// really did fail over. Mapped to 503/lease_expired with Retry-After.
var errLeaseExpired = errors.New("promipsd: replication lease expired; writes fenced until a follower pulls again")

// leaseName is the fencing deadline's file, kept beside the SHARDS
// manifest in the primary's directory.
const leaseName = "LEASE"

// leaseGuard implements the primary half of lease-fenced failover.
//
// The lease is granted implicitly by serving replication pulls: every
// pull a follower makes extends the fencing deadline to now+d. The
// supervised follower, symmetrically, waits out one full request timeout
// plus one full lease (plus margin) of refusing-to-pull before it
// promotes — so by the time a new primary can accept its first write,
// this guard has already been refusing writes for the margin at least
// (see DESIGN.md for the two-clock argument). That ordering — old
// primary fenced strictly before new primary writable — is what makes a
// network partition produce one primary, not two.
//
// The deadline survives restarts: it is persisted (atomically, fsynced)
// whenever it advances by at least d/4, so a primary that crashes and
// reopens inside a partition does not forget that a follower holds a
// lease on its history. A primary that has never served a pull
// (bootstrap, benchmarks, no replica configured) is unfenced.
//
// Deposition is sharper than expiry and also tracked here: a pull
// stamped with a lineage epoch ABOVE the primary's own means a follower
// has already promoted — this primary's history has been succeeded — so
// it permanently refuses both pulls and writes (409/stale_primary)
// until an operator rebuilds it as a follower of the new lineage.
type leaseGuard struct {
	dir string
	d   time.Duration // 0: no expiry, deposition tracking only

	mu        sync.Mutex
	attached  bool      // some follower has pulled (now or in a past run)
	deadline  time.Time // fence instant: writes refused once passed
	persisted time.Time // deadline as last written to LEASE
	deposed   bool
	peerEpoch int64 // highest follower lineage epoch seen
}

// newLeaseGuard builds the guard for the primary at dir, resuming a
// persisted deadline if one exists. d <= 0 disables expiry (deposition
// is still enforced).
func newLeaseGuard(dir string, d time.Duration) *leaseGuard {
	g := &leaseGuard{dir: dir, d: d, peerEpoch: shard.UnstampedEpoch}
	if d <= 0 {
		return g
	}
	if b, err := os.ReadFile(filepath.Join(dir, leaseName)); err == nil && len(b) == 8 {
		nanos := int64(binary.LittleEndian.Uint64(b))
		g.attached = true
		g.deadline = time.Unix(0, nanos)
		g.persisted = g.deadline
	}
	return g
}

// served records one replication pull from a follower at lineage epoch
// peer (shard.UnstampedEpoch if the request carried none), against this
// primary's own epoch. It renews the lease or — when the peer's epoch
// proves a completed failover — deposes this primary.
func (g *leaseGuard) served(peer, own int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.deposed {
		return fmt.Errorf("promipsd: deposed by failover epoch %d (serving %d): %w",
			g.peerEpoch, own, promips.ErrStalePrimary)
	}
	if peer != shard.UnstampedEpoch && peer > own {
		g.deposed = true
		g.peerEpoch = peer
		return fmt.Errorf("promipsd: follower at epoch %d outranks this primary at %d: %w",
			peer, own, promips.ErrStalePrimary)
	}
	if peer > g.peerEpoch {
		g.peerEpoch = peer
	}
	if g.d <= 0 {
		return nil
	}
	g.attached = true
	g.deadline = time.Now().Add(g.d)
	// Persist when the durable deadline has fallen d/4 behind, bounding
	// fsync traffic at poll cadence while keeping the on-disk fence within
	// d/4 of the in-memory one (the follower's promotion wait absorbs the
	// difference; see DESIGN.md).
	if g.deadline.Sub(g.persisted) >= g.d/4 {
		if err := g.persistLocked(); err != nil {
			// Failing to persist must not fail the pull: the in-memory
			// fence still holds for this process; only a crash-restart
			// could see a deadline up to d/4 stale.
			return nil
		}
	}
	return nil
}

// persistLocked writes the wall-clock deadline to LEASE atomically.
func (g *leaseGuard) persistLocked() error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(g.deadline.UnixNano()))
	err := fsutil.WriteAtomic(fsutil.OS, filepath.Join(g.dir, leaseName), func(f fsutil.File) error {
		_, werr := f.Write(b[:])
		return werr
	})
	if err != nil {
		return err
	}
	g.persisted = g.deadline
	return nil
}

// checkWrite gates one update (insert/delete/save-by-client): nil means
// the write may be acknowledged.
func (g *leaseGuard) checkWrite() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.deposed {
		return fmt.Errorf("promipsd: write refused, deposed by failover epoch %d: %w",
			g.peerEpoch, promips.ErrStalePrimary)
	}
	if g.d > 0 && g.attached && time.Now().After(g.deadline) {
		return errLeaseExpired
	}
	return nil
}

// expired reports whether the guard is currently fencing writes (stats).
func (g *leaseGuard) expired() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deposed || (g.d > 0 && g.attached && time.Now().After(g.deadline))
}
