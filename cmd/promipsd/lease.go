package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"promips"
	"promips/internal/fsutil"
	"promips/shard"
)

// errLeaseExpired fences the write path of a primary whose replication
// lease lapsed: the auto-promoting follower has not pulled history for
// longer than the lease, so it may be promoting right now, and accepting
// a write here could put it on a forked history. Writes resume the
// moment that follower pulls again (re-arming the lease) — or never, if
// the cluster really did fail over. Mapped to 503/lease_expired with
// Retry-After.
var errLeaseExpired = errors.New("promipsd: replication lease expired; writes fenced until the auto-promoting follower pulls again")

// leaseName is the fencing deadline's file, kept beside the SHARDS
// manifest in the primary's directory.
const leaseName = "LEASE"

// leaseMagic heads the LEASE file: deadline nanos and the grantor
// identity, newline-separated.
const leaseMagic = "PMLEASE v2"

// leaseGuard implements the primary half of lease-fenced failover.
//
// The lease is granted implicitly by serving replication HISTORY pulls
// (wal tails, snapshot streams) to ONE auto-promoting follower — the
// grantor: every such pull extends the fencing deadline to now+d. The
// grantor, symmetrically, waits out one full request timeout plus one
// full lease (plus margin) of refusing-to-pull before it promotes — so
// by the time a new primary can accept its first write, this guard has
// already been refusing writes for the margin at least (see DESIGN.md
// for the two-clock argument). That ordering — old primary fenced
// strictly before new primary writable — is what makes a network
// partition produce one primary, not two.
//
// Two classes of pulls deliberately never touch the lease:
//
//   - Metadata reads (manifest, shard state). A follower's Lag() — and so
//     every /v1/readyz and /v1/stats scrape against it — issues these; if
//     they renewed the lease, a load balancer probing a quarantining
//     follower would keep re-arming the very lease the quarantine is
//     waiting out, and the promotion would commit against a still-live
//     lease: two writable primaries.
//
//   - Pulls without a promoter identity (plain read replicas, promipsctl
//     snapshot). They make no promise to wait before promoting, so their
//     liveness proves nothing about failover safety. Any number of them
//     can follow a primary; only the one promoter's silence fences it.
//
// The lease binds to the grantor's identity: a history pull from a
// DIFFERENT promoter while the grantor's lease is live is refused
// outright. Two independent auto-promoters could each quarantine and
// promote on their own — no lease protocol can fence two promoters
// against each other — so the topology of at most one auto-promoting
// follower per primary is enforced at the first pull, loudly, instead of
// discovered as a forked history. Once the bound lease expires, a new
// promoter identity may bind (an auto-promoting follower that restarted
// under a fresh identity re-binds within one lease).
//
// The deadline and grantor survive restarts: they are persisted
// (atomically, fsynced) whenever the deadline advances by at least d/4
// or the grantor changes, so a primary that crashes and reopens inside a
// partition does not forget that a follower holds a lease on its
// history. A primary that has never served a promoter's history pull
// (bootstrap, benchmarks, no auto-promoter configured) is unfenced.
//
// Deposition is sharper than expiry and also tracked here: a pull
// stamped with a lineage epoch ABOVE the primary's own means a follower
// has already promoted — this primary's history has been succeeded — so
// it permanently refuses both pulls and writes (409/stale_primary)
// until an operator rebuilds it as a follower of the new lineage.
type leaseGuard struct {
	dir string
	d   time.Duration // 0: no expiry, deposition tracking only

	// startWall/startMono anchor the drift measurement: both taken at
	// construction, startWall stripped to wall-clock only (Round(0)),
	// startMono keeping its monotonic reading. The difference of their
	// elapsed times is how far the wall clock has stepped or slewed against
	// the monotonic clock since this guard started — the margin by which
	// the PERSISTED (wall-stamped) deadline may be off after a restart.
	startWall time.Time
	startMono time.Time

	mu        sync.Mutex
	attached  bool      // a promoter's history pull armed the lease (now or in a past run)
	grantor   string    // promoter identity the lease is bound to ("" = unknown, legacy LEASE file)
	deadline  time.Time // fence instant: writes refused once passed. ALWAYS monotonic-bearing (see newLeaseGuard) so expiry comparisons never follow wall-clock steps
	persisted time.Time // deadline as last written to LEASE
	deposed   bool
	peerEpoch int64 // highest follower lineage epoch seen
}

// newLeaseGuard builds the guard for the primary at dir, resuming a
// persisted deadline (and grantor binding) if one exists. d <= 0
// disables expiry (deposition is still enforced).
func newLeaseGuard(dir string, d time.Duration) *leaseGuard {
	now := time.Now()
	g := &leaseGuard{dir: dir, d: d, peerEpoch: shard.UnstampedEpoch,
		startWall: now.Round(0), startMono: now}
	if d <= 0 {
		return g
	}
	if nanos, grantor, ok := readLease(filepath.Join(dir, leaseName)); ok {
		g.attached = true
		g.grantor = grantor
		// Re-anchor the persisted wall-clock deadline onto the monotonic
		// clock: time.Unix gives a wall-only Time, and comparing one of
		// those against time.Now() falls back to wall-clock time — so an
		// NTP step (or an operator resetting the clock backwards) could
		// silently re-arm an expired fence, exactly the failure mode a
		// fencing lease must not have. Computing the REMAINING duration
		// once, against the wall clock, and adding it to a monotonic-bearing
		// now pins every subsequent expiry comparison to the monotonic
		// clock. (The persisted stamp itself is necessarily wall-clock — the
		// monotonic clock does not survive the process — which is why the
		// follower's promotion wait already budgets a safety margin; the
		// drift stat below measures how much that margin is being eaten.)
		remaining := time.Duration(nanos - now.Round(0).UnixNano())
		g.deadline = now.Add(remaining)
		g.persisted = g.deadline
	}
	return g
}

// leaseState is a point-in-time view of the guard for /v1/stats.
type leaseState struct {
	attached  bool
	expired   bool
	deposed   bool
	grantor   string
	remaining time.Duration // until the fence instant; <= 0 once fenced
	drift     time.Duration // wall-clock drift vs monotonic since guard start
}

// state snapshots the guard. remaining is measured on the monotonic clock
// (deadline is monotonic-bearing); drift is the wall-vs-monotonic skew
// accumulated since the guard was built — nonzero means the wall clock
// stepped or slewed, and the persisted deadline is off by about that much.
func (g *leaseGuard) state() leaseState {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := time.Now()
	st := leaseState{
		attached: g.attached,
		deposed:  g.deposed,
		grantor:  g.grantor,
		drift:    now.Round(0).Sub(g.startWall) - now.Sub(g.startMono),
	}
	if g.d > 0 && g.attached {
		st.remaining = g.deadline.Sub(now)
		st.expired = st.remaining <= 0
	}
	if g.deposed {
		st.expired = true
	}
	return st
}

// readLease parses a LEASE file: the v2 text format, or the legacy raw
// 8-byte deadline (whose grantor identity is unknown — conservatively
// bound to nobody, so a new promoter binds only after it expires).
func readLease(path string) (nanos int64, grantor string, ok bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, "", false
	}
	if len(b) == 8 {
		return int64(binary.LittleEndian.Uint64(b)), "", true
	}
	lines := strings.Split(string(b), "\n")
	if len(lines) < 3 || lines[0] != leaseMagic {
		return 0, "", false
	}
	nanos, err = strconv.ParseInt(lines[1], 10, 64)
	if err != nil {
		return 0, "", false
	}
	return nanos, lines[2], true
}

// served records one replication pull against this primary's own epoch.
// It enforces deposition on every pull, and renews (or binds) the write
// lease only on a promoter's history pulls — see the type comment for
// why metadata and non-promoter pulls are lease-neutral.
func (g *leaseGuard) served(pull shard.ReplPull, own int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.deposed {
		return fmt.Errorf("promipsd: deposed by failover epoch %d (serving %d): %w",
			g.peerEpoch, own, promips.ErrStalePrimary)
	}
	if pull.PeerEpoch != shard.UnstampedEpoch && pull.PeerEpoch > own {
		g.deposed = true
		g.peerEpoch = pull.PeerEpoch
		return fmt.Errorf("promipsd: follower at epoch %d outranks this primary at %d: %w",
			pull.PeerEpoch, own, promips.ErrStalePrimary)
	}
	if pull.PeerEpoch > g.peerEpoch {
		g.peerEpoch = pull.PeerEpoch
	}
	if g.d <= 0 || pull.Promoter == "" || !pull.History {
		return nil
	}
	now := time.Now()
	if g.attached && g.grantor != pull.Promoter && now.Before(g.deadline) {
		// A live lease bound to another promoter (or, after a legacy
		// restart, to an unknown one). Serving history here would let two
		// auto-promoters each converge and each believe its own silence
		// fences this primary — the dual-primary the lease exists to
		// prevent. Transient by design: the refused promoter retries, and
		// binds once the bound lease expires.
		return fmt.Errorf("promipsd: replication lease held by auto-promoting follower %q for another %s; refusing history pull from promoter %q (run at most one -auto-promote follower per primary)",
			g.grantor, time.Until(g.deadline).Round(time.Millisecond), pull.Promoter)
	}
	rebound := !g.attached || g.grantor != pull.Promoter
	g.attached = true
	g.grantor = pull.Promoter
	g.deadline = now.Add(g.d)
	// Persist on a grantor change, or when the durable deadline has fallen
	// d/4 behind — bounding fsync traffic at poll cadence while keeping
	// the on-disk fence within d/4 of the in-memory one (the follower's
	// promotion wait absorbs the difference; see DESIGN.md). Failing to
	// persist must not fail the pull: the in-memory fence still holds for
	// this process; only a crash-restart could see a deadline up to d/4
	// stale.
	if rebound || g.deadline.Sub(g.persisted) >= g.d/4 {
		g.persistLocked()
	}
	return nil
}

// persistLocked writes the wall-clock deadline and grantor to LEASE
// atomically.
func (g *leaseGuard) persistLocked() error {
	body := fmt.Sprintf("%s\n%d\n%s\n", leaseMagic, g.deadline.UnixNano(), g.grantor)
	err := fsutil.WriteAtomic(fsutil.OS, filepath.Join(g.dir, leaseName), func(f fsutil.File) error {
		_, werr := f.Write([]byte(body))
		return werr
	})
	if err != nil {
		return err
	}
	g.persisted = g.deadline
	return nil
}

// checkWrite gates one update (insert/delete/save-by-client): nil means
// the write may be acknowledged.
func (g *leaseGuard) checkWrite() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.deposed {
		return fmt.Errorf("promipsd: write refused, deposed by failover epoch %d: %w",
			g.peerEpoch, promips.ErrStalePrimary)
	}
	if g.d > 0 && g.attached && time.Now().After(g.deadline) {
		return errLeaseExpired
	}
	return nil
}

// expired reports whether the guard is currently fencing writes (stats).
func (g *leaseGuard) expired() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deposed || (g.d > 0 && g.attached && time.Now().After(g.deadline))
}
