package main

import (
	"path/filepath"
	"reflect"

	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"promips/shard"
	"testing"

	"promips"
	"promips/client"
)

func testVecs(r *rand.Rand, n, d int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		out[i] = v
	}
	return out
}

// newTestServer builds a small index and serves it through the real handler
// stack, returning a client pointed at it.
func newTestServer(t *testing.T, cfg serverConfig) (*promips.Index, *client.Client) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	data := testVecs(r, 200, 8)
	ix, err := promips.Build(data, promips.Options{Dir: t.TempDir(), Seed: 8, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	hs := httptest.NewServer(newServer(ix, cfg))
	t.Cleanup(hs.Close)
	return ix, client.New(hs.URL, client.WithHTTPClient(hs.Client()))
}

// TestRoundTrips drives every endpoint through the real HTTP stack and the
// client package: insert → search finds it → delete → stats agree.
func TestRoundTrips(t *testing.T) {
	ix, c := newTestServer(t, serverConfig{searchSlots: 4, updateSlots: 4})
	ctx := context.Background()
	r := rand.New(rand.NewSource(9))
	vec := testVecs(r, 1, 8)[0]

	id, err := c.Insert(ctx, vec)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	res, err := c.Search(ctx, client.SearchRequest{Vector: vec, K: 5})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(res.Results) != 5 {
		t.Fatalf("search returned %d results, want 5", len(res.Results))
	}
	found := false
	for _, got := range res.Results {
		if got.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("freshly inserted id %d missing from its own top-5", id)
	}

	batch, err := c.SearchBatch(ctx, client.BatchRequest{Vectors: testVecs(r, 6, 8), K: 3, Workers: 3})
	if err != nil {
		t.Fatalf("searchbatch: %v", err)
	}
	if len(batch.Results) != 6 || len(batch.Stats) != 6 {
		t.Fatalf("searchbatch returned %d/%d entries, want 6/6", len(batch.Results), len(batch.Stats))
	}

	deleted, err := c.Delete(ctx, id)
	if err != nil || !deleted {
		t.Fatalf("delete live id: deleted=%v err=%v", deleted, err)
	}
	if deleted, err = c.Delete(ctx, id); err != nil || deleted {
		t.Fatalf("delete dead id: deleted=%v err=%v", deleted, err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Live != ix.LiveCount() || st.Dim != 8 {
		t.Fatalf("stats live=%d dim=%d, index says live=%d dim=8", st.Live, st.Dim, ix.LiveCount())
	}

	if err := c.Save(ctx); err != nil {
		t.Fatalf("save: %v", err)
	}
	if st, err = c.Stats(ctx); err != nil || st.JournalLen != 0 {
		t.Fatalf("after save: journal_len=%d err=%v, want 0", st.JournalLen, err)
	}
}

// TestErrorMapping asserts the wire errors carry the right status+code and
// that the client maps them back to the promips sentinels — errors.Is parity
// between remote and embedded use.
func TestErrorMapping(t *testing.T) {
	_, c := newTestServer(t, serverConfig{searchSlots: 4, updateSlots: 4})
	ctx := context.Background()

	_, err := c.Search(ctx, client.SearchRequest{Vector: []float32{1, 2}, K: 3})
	if !errors.Is(err, promips.ErrDimMismatch) {
		t.Fatalf("mis-dimensioned remote search = %v, want errors.Is ErrDimMismatch", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Code != client.CodeDimMismatch {
		t.Fatalf("wire error = %+v, want 400/%s", ae, client.CodeDimMismatch)
	}

	if _, err := c.Insert(ctx, []float32{1}); !errors.Is(err, promips.ErrDimMismatch) {
		t.Fatalf("mis-dimensioned remote insert = %v, want ErrDimMismatch", err)
	}
}

// TestStatusForPoisoned pins the satellite: a poisoned journal surfaces as
// 503 + the journal_poisoned code, marked retryable — not a generic 500.
func TestStatusForPoisoned(t *testing.T) {
	wrapped := errorsJoinLike()
	status, code, retryable := statusFor(wrapped)
	if status != http.StatusServiceUnavailable || code != client.CodeJournalPoisoned || !retryable {
		t.Fatalf("statusFor(poisoned) = %d/%s/retryable=%v, want 503/%s/true",
			status, code, retryable, client.CodeJournalPoisoned)
	}
	// And the client maps that code back to the sentinel.
	ae := &client.APIError{Status: status, Code: code, Retryable: retryable, Message: wrapped.Error()}
	if !errors.Is(ae, promips.ErrJournalPoisoned) {
		t.Fatal("client does not map journal_poisoned back to ErrJournalPoisoned")
	}

	if status, code, _ := statusFor(context.DeadlineExceeded); status != http.StatusGatewayTimeout || code != client.CodeDeadline {
		t.Fatalf("statusFor(deadline) = %d/%s, want 504/%s", status, code, client.CodeDeadline)
	}
	if status, code, _ := statusFor(errors.New("boom")); status != http.StatusInternalServerError || code != client.CodeInternal {
		t.Fatalf("statusFor(opaque) = %d/%s, want 500/%s", status, code, client.CodeInternal)
	}
}

// errorsJoinLike builds an error shaped like what core.Insert returns off a
// poisoned journal: the sentinel wrapped under operation context.
func errorsJoinLike() error {
	return &wrapErr{msg: "core: insert: wal: update journal poisoned by earlier failure: injected fault"}
}

type wrapErr struct{ msg string }

func (e *wrapErr) Error() string { return e.msg }
func (e *wrapErr) Is(target error) bool {
	return target == promips.ErrJournalPoisoned
}

// TestQueueFull pins bounded admission: with zero slots every request is
// refused with 429 + queue_full + Retry-After, and the client marks it
// retryable.
func TestQueueFull(t *testing.T) {
	_, c := newTestServer(t, serverConfig{searchSlots: 0, updateSlots: 0})
	ctx := context.Background()

	_, err := c.Search(ctx, client.SearchRequest{Vector: make([]float32, 8), K: 3})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || ae.Code != client.CodeQueueFull || !ae.Retryable {
		t.Fatalf("search with zero slots = %v, want 429/%s retryable", err, client.CodeQueueFull)
	}
	if _, err := c.Insert(ctx, make([]float32, 8)); !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("insert with zero slots = %v, want 429", err)
	}
}

// TestRequestTimeout pins the deadline path end to end: a request-level
// timeout_ms far below the work's duration must come back 504/deadline.
// A 1ns server cap guarantees expiry without any slow-disk machinery.
func TestRequestTimeout(t *testing.T) {
	ix, _ := newTestServer(t, serverConfig{searchSlots: 4, updateSlots: 4})
	hs := httptest.NewServer(newServer(ix, serverConfig{
		requestTimeout: 1, // 1ns: every context is born expired
		searchSlots:    4,
		updateSlots:    4,
	}))
	defer hs.Close()
	c := client.New(hs.URL, client.WithHTTPClient(hs.Client()))

	_, err := c.Search(context.Background(), client.SearchRequest{Vector: make([]float32, 8), K: 3})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("search under expired deadline = %v, want errors.Is DeadlineExceeded", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout || !ae.Retryable {
		t.Fatalf("wire error = %+v, want 504 retryable", ae)
	}
}

// TestShardedServing serves a sharded index and a follower replica through
// the real handler stack: stats must carry the shard and replication
// extras, follower updates must come back 403/read_only mapping to
// ErrReadOnlyReplica, and after a poll the follower answers searches
// byte-identically to the primary.
func TestShardedServing(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	data := testVecs(r, 120, 8)
	primaryDir := filepath.Join(t.TempDir(), "primary")
	primary, err := shard.Build(data, shard.Options{
		Shards: 4, Dir: primaryDir, Index: promips.Options{Seed: 18, M: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	if err := primary.Save(); err != nil {
		t.Fatal(err)
	}

	cfg := serverConfig{searchSlots: 4, updateSlots: 4}
	phs := httptest.NewServer(newServer(primary, cfg))
	t.Cleanup(phs.Close)
	pc := client.New(phs.URL, client.WithHTTPClient(phs.Client()))
	ctx := context.Background()

	vec := testVecs(r, 1, 8)[0]
	id, err := pc.Insert(ctx, vec)
	if err != nil {
		t.Fatalf("primary insert: %v", err)
	}
	if want := uint32(len(data)); id != want {
		t.Fatalf("sharded insert id %d, want dense next id %d", id, want)
	}
	st, err := pc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || len(st.ShardJournalLens) != 4 || st.ReadOnly {
		t.Fatalf("primary stats extras wrong: %+v", st)
	}
	if st.JournalLen != 1 {
		t.Fatalf("primary journal_len %d after one insert, want 1", st.JournalLen)
	}

	replicaDir := filepath.Join(t.TempDir(), "replica")
	if err := shard.Snapshot(primaryDir, replicaDir); err != nil {
		t.Fatal(err)
	}
	f, err := shard.OpenFollower(replicaDir, primaryDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	fhs := httptest.NewServer(newServer(f, cfg))
	t.Cleanup(fhs.Close)
	fc := client.New(fhs.URL, client.WithHTTPClient(fhs.Client()))

	fst, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !fst.ReadOnly || fst.Replication == nil {
		t.Fatalf("follower stats missing replication extras: %+v", fst)
	}
	if fst.Replication.Lag != 0 {
		t.Fatalf("follower lag %d after poll, want 0", fst.Replication.Lag)
	}
	if fst.Live != st.Live {
		t.Fatalf("follower live %d, primary live %d", fst.Live, st.Live)
	}

	_, err = fc.Insert(ctx, vec)
	if !errors.Is(err, promips.ErrReadOnlyReplica) {
		t.Fatalf("follower insert = %v, want errors.Is ErrReadOnlyReplica", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusForbidden || ae.Code != client.CodeReadOnly {
		t.Fatalf("follower insert wire error = %+v, want 403/%s", ae, client.CodeReadOnly)
	}
	if err := fc.Save(ctx); !errors.Is(err, promips.ErrReadOnlyReplica) {
		t.Fatalf("follower save = %v, want ErrReadOnlyReplica", err)
	}

	pres, err := pc.Search(ctx, client.SearchRequest{Vector: vec, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fc.Search(ctx, client.SearchRequest{Vector: vec, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fres.Results, pres.Results) {
		t.Fatalf("follower search diverges from primary:\n got %v\nwant %v", fres.Results, pres.Results)
	}
}
