package main

import (
	"context"
	"errors"
	"log"
	"math/rand"
	"net/http"
	"time"

	"promips"
	"promips/shard"
)

// supervisor owns a follower's replication poll loop — and, with
// -auto-promote, the failure detector that turns the follower into the
// new primary when the old one dies.
//
// Polling backs off on failure: consecutive failed rounds double the
// interval (with jitter, capped) instead of hammering a dead or choking
// primary at tick cadence, and one success snaps back to the configured
// -poll. The consecutive-failure count is surfaced in /v1/stats.
//
// Automatic failover is deliberately slower than detection. A primary is
// SUSPECT after -suspect consecutive poll failures AND a failed liveness
// probe (GET /healthz on the primary's base URL — only URL-followed
// primaries can auto-promote). A suspect primary is not promoted over
// immediately: the supervisor first QUARANTINES it — stops pulling, which
// stops granting lease renewals — and keeps probing for τ+D+margin (τ =
// the replication source's per-request timeout, D = -lease). If the
// primary answers during quarantine, it was a partition or a stall, not a
// death: the supervisor stands down and resumes pulling. Only when the
// primary stays dark through the full window does it drain the remaining
// journal tails and run shard.Promote. The window is what makes the
// promotion safe: any write lease the old primary could still hold was
// granted by a pull that started before quarantine began, so it expires
// at least margin before the promotion commits (the dual-primary argument
// in DESIGN.md).
type supervisor struct {
	f    *shard.Follower
	srv  *server
	poll time.Duration

	primaryURL string        // liveness probe target; "" when following a directory
	auto       bool          // -auto-promote
	lease      time.Duration // D: must be ≥ the primary's -lease
	suspectN   int64         // consecutive failures before suspicion
	reqTimeout time.Duration // τ: bounds one in-flight pull
	hc         *http.Client
}

func newSupervisor(f *shard.Follower, srv *server, poll time.Duration, primaryURL string, auto bool, lease time.Duration, suspectN int) *supervisor {
	if suspectN < 1 {
		suspectN = 1
	}
	return &supervisor{
		f:          f,
		srv:        srv,
		poll:       poll,
		primaryURL: primaryURL,
		auto:       auto,
		lease:      lease,
		suspectN:   int64(suspectN),
		reqTimeout: replRequestTimeout,
		hc:         &http.Client{},
	}
}

// backoffFor returns the jittered, capped exponential delay after n
// consecutive failures: poll·2^(n-1) capped at 32·poll (never above 10s),
// uniformly jittered into [d/2, d] so restarted replicas do not probe a
// recovering primary in lockstep.
func (s *supervisor) backoffFor(n int64) time.Duration {
	d := s.poll
	for i := int64(1); i < n && d < 32*s.poll && d < 10*time.Second; i++ {
		d *= 2
	}
	if m := 32 * s.poll; d > m {
		d = m
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// primaryAlive probes the primary's liveness endpoint. Only meaningful
// for URL-followed primaries.
func (s *supervisor) primaryAlive() bool {
	if s.primaryURL == "" {
		return false
	}
	probeTimeout := s.reqTimeout
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.primaryURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// run drives the poll loop until ctx is cancelled (shutdown, or a manual
// /v1/promote) or an auto-promotion completes.
func (s *supervisor) run(ctx context.Context) {
	delay := s.poll
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(delay):
		}
		_, err := s.f.Poll()
		if err == nil {
			s.srv.pollFails.Store(0)
			delay = s.poll
			continue
		}
		if errors.Is(err, promips.ErrClosed) {
			return // promoted out from under us via /v1/promote
		}
		n := s.srv.pollFails.Add(1)
		delay = s.backoffFor(n)
		log.Printf("replication poll: %v (consecutive failures: %d, next attempt in %s)", err, n, delay.Round(time.Millisecond))
		if s.auto && n >= s.suspectN && !s.primaryAlive() {
			if s.failover(ctx) {
				return
			}
			// The primary resurfaced during quarantine: stand down.
			s.srv.pollFails.Store(0)
			delay = s.poll
		}
	}
}

// failover quarantines the suspect primary and, if it stays dark for the
// full fencing window, promotes this follower. Returns true when the
// supervisor should exit (promotion happened or shutdown began), false
// to resume following.
func (s *supervisor) failover(ctx context.Context) bool {
	// Flag the quarantine so /v1/readyz and /v1/stats answer from local
	// state: a remote Lag read against the suspect primary would hang the
	// probe, and — if the primary is slow-but-alive — would be a pull made
	// during the very window that promises to make none. (Lease renewal is
	// additionally confined server-side to the promoter's history pulls,
	// so even an unflagged metadata read could not re-arm it.)
	s.srv.quarantined.Store(true)
	defer s.srv.quarantined.Store(false)
	margin := s.poll
	if margin < 250*time.Millisecond {
		margin = 250 * time.Millisecond
	}
	wait := s.reqTimeout + s.lease + margin
	log.Printf("failover: primary %s suspect; quarantining for %s (τ=%s + lease=%s + margin=%s) before promotion",
		s.primaryURL, wait.Round(time.Millisecond), s.reqTimeout, s.lease, margin.Round(time.Millisecond))
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	probeEvery := margin
	for {
		select {
		case <-ctx.Done():
			return true
		case <-deadline.C:
			if err := s.srv.promoteNow("auto-failover"); err != nil {
				log.Printf("failover: promotion failed: %v", err)
				return false
			}
			return true
		case <-time.After(probeEvery):
			// No pulls in quarantine — pulling would re-grant the lease we
			// are waiting out. Liveness probes only.
			if s.primaryAlive() {
				log.Printf("failover: primary %s answered during quarantine; standing down", s.primaryURL)
				return false
			}
		}
	}
}
