// Package promips is a from-scratch Go implementation of ProMIPS — the
// probability-guaranteed c-approximate Maximum Inner Product Search of
// Song, Gu, Zhang and Yu ("ProMIPS: Efficient High-Dimensional
// c-Approximate Maximum Inner Product Search with a Lightweight Index",
// ICDE 2021).
//
// Given a dataset D of n points and a query q in R^d, a c-AMIP search
// returns a point o with ⟨o,q⟩ ≥ c·⟨o*,q⟩, where o* is the exact MIP point.
// ProMIPS projects points to m dimensions with 2-stable random projections,
// indexes the projections in a disk-resident iDistance structure backed by
// a single B+-tree, and terminates its range search through two derived
// conditions that guarantee the c-AMIP answer with any requested
// probability p. The Quick-Probe procedure determines the search range up
// front from m-bit sign codes and data norms, avoiding an incremental NN
// scan.
//
// # Quick start
//
//	index, err := promips.Build(data, promips.Options{Dir: dir, C: 0.9, P: 0.5})
//	if err != nil { ... }
//	defer index.Close()
//	results, stats, err := index.Search(query, 10)
//
// Results come back best-first with exact inner products; stats reports the
// verified candidate count and disk pages touched. See the examples/
// directory for complete programs and DESIGN.md for the system layout.
package promips

import (
	"fmt"
	"os"

	"promips/internal/core"
)

// Options configures Build. The zero value reproduces the paper's default
// setting: c = 0.9, p = 0.5, optimized projected dimension, kp = 5,
// Nkey = 40, ksp = 10 and 4KB pages.
type Options struct {
	// Dir is the directory for the index's page files. Empty means a fresh
	// temporary directory (removed on Close).
	Dir string

	// C is the approximation ratio c ∈ (0,1). Default 0.9.
	C float64
	// P is the guarantee probability p ∈ (0,1). Default 0.5.
	P float64
	// M is the projected dimensionality; 0 selects the paper's optimized
	// m = argmin 2^m(m+1) + n/2^m.
	M int

	// Kp, Nkey and Ksp shape the iDistance partition pattern: top-level
	// k-means partitions, rings per partition, sub-partitions per ring.
	Kp, Nkey, Ksp int
	// Epsilon overrides the ring width (0 = derive from data).
	Epsilon float64

	// PageSize is the disk page size in bytes (default 4096). Vectors must
	// fit in one page: use larger pages for very high dimensions, as the
	// paper does for P53 (64KB).
	PageSize int
	// PoolSize is the per-file buffer pool capacity in pages.
	PoolSize int

	// Seed fixes all randomness (projections, clustering).
	Seed int64
}

// Result is one returned point: its id (position in the Build slice) and
// exact inner product with the query.
type Result = core.Result

// SearchStats describes the work a query performed; see core.SearchStats.
type SearchStats = core.SearchStats

// SizeBreakdown itemizes index storage.
type SizeBreakdown = core.SizeBreakdown

// Index is a ProMIPS index over a dataset. An Index is safe for concurrent
// use: any number of goroutines may call Search, SearchIncremental, Exact
// and the accessors simultaneously, and Insert/Delete interleave correctly
// with them (searches see either the state before or after an update,
// never a partial one). Every query accounts its page accesses in a
// private accumulator, so SearchStats stays exact — the paper's per-query
// Page Access metric — under any level of concurrency. See DESIGN.md for
// the locking contract layer by layer.
type Index struct {
	inner   *core.Index
	dir     string
	ownsDir bool
}

// Build constructs an index over data. Every point must share one
// dimensionality; point i is identified by uint32(i) in results.
func Build(data [][]float32, opts Options) (*Index, error) {
	dir := opts.Dir
	ownsDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "promips-*")
		if err != nil {
			return nil, fmt.Errorf("promips: temp dir: %w", err)
		}
		dir, ownsDir = d, true
	}
	inner, err := core.Build(data, dir, core.Options{
		C: opts.C, P: opts.P, M: opts.M,
		Kp: opts.Kp, Nkey: opts.Nkey, Ksp: opts.Ksp, Epsilon: opts.Epsilon,
		PageSize: opts.PageSize, PoolSize: opts.PoolSize, Seed: opts.Seed,
	})
	if err != nil {
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	return &Index{inner: inner, dir: dir, ownsDir: ownsDir}, nil
}

// Search returns the top-k c-AMIP points for q, best inner product first.
// With probability at least p, every returned point oi satisfies
// ⟨oi,q⟩ ≥ c·⟨o*i,q⟩ against the exact i-th MIP point o*i.
func (ix *Index) Search(q []float32, k int) ([]Result, SearchStats, error) {
	return ix.inner.Search(q, k)
}

// SearchBatch answers many queries concurrently against the shared index
// with a bounded worker pool (one worker per available CPU, at most one per
// query). Results and stats are positionally aligned with queries, and each
// query's answer is identical to what a sequential Search would return. The
// first query error cancels the remaining work and is returned.
func (ix *Index) SearchBatch(queries [][]float32, k int) ([][]Result, []SearchStats, error) {
	return ix.inner.SearchBatch(queries, k, 0)
}

// SearchBatchWorkers is SearchBatch with an explicit worker-pool size;
// workers <= 0 uses one worker per available CPU. It exists for throughput
// experiments that sweep the worker count.
func (ix *Index) SearchBatchWorkers(queries [][]float32, k, workers int) ([][]Result, []SearchStats, error) {
	return ix.inner.SearchBatch(queries, k, workers)
}

// SearchIncremental answers the same query with the paper's Algorithm 1
// (incremental NN search with per-point condition tests) instead of
// Quick-Probe. It exists for comparison; Search is the recommended path.
func (ix *Index) SearchIncremental(q []float32, k int) ([]Result, SearchStats, error) {
	return ix.inner.SearchIncremental(q, k)
}

// Exact returns the true top-k MIP points by scanning the dataset. It is
// provided for evaluation (overall ratio, recall) and small workloads.
func (ix *Index) Exact(q []float32, k int) ([]Result, error) {
	return ix.inner.Exact(q, k)
}

// Insert adds a point to the index and returns its id. Inserted points
// live in an exactly-evaluated in-memory delta until Compact; searches see
// them immediately and the (c, p) guarantee is preserved. This is the
// frequently-updated workload (§I of the paper) the lightweight index is
// designed for.
func (ix *Index) Insert(v []float32) (uint32, error) { return ix.inner.Insert(v) }

// Delete tombstones the point with the given id and reports whether it was
// live. Deleted points stop appearing in results immediately.
func (ix *Index) Delete(id uint32) bool { return ix.inner.Delete(id) }

// LiveCount returns the number of live (non-deleted) points, including
// not-yet-compacted inserts.
func (ix *Index) LiveCount() int { return ix.inner.LiveCount() }

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.inner.Len() }

// Dim returns the dataset dimensionality.
func (ix *Index) Dim() int { return ix.inner.Dim() }

// M returns the projected dimensionality in use.
func (ix *Index) M() int { return ix.inner.M() }

// Sizes itemizes the index's storage footprint.
func (ix *Index) Sizes() SizeBreakdown { return ix.inner.Sizes() }

// Dir returns the directory holding the index's page files.
func (ix *Index) Dir() string { return ix.dir }

// Close releases the page files (and removes the index directory when
// Build created a temporary one).
func (ix *Index) Close() error {
	err := ix.inner.Close()
	if ix.ownsDir {
		if rmErr := os.RemoveAll(ix.dir); err == nil {
			err = rmErr
		}
	}
	return err
}
