// Package promips is a from-scratch Go implementation of ProMIPS — the
// probability-guaranteed c-approximate Maximum Inner Product Search of
// Song, Gu, Zhang and Yu ("ProMIPS: Efficient High-Dimensional
// c-Approximate Maximum Inner Product Search with a Lightweight Index",
// ICDE 2021).
//
// Given a dataset D of n points and a query q in R^d, a c-AMIP search
// returns a point o with ⟨o,q⟩ ≥ c·⟨o*,q⟩, where o* is the exact MIP point.
// ProMIPS projects points to m dimensions with 2-stable random projections,
// indexes the projections in a disk-resident iDistance structure backed by
// a single B+-tree, and terminates its range search through two derived
// conditions that guarantee the c-AMIP answer with any requested
// probability p. The Quick-Probe procedure determines the search range up
// front from m-bit sign codes and data norms, avoiding an incremental NN
// scan.
//
// # Quick start
//
//	index, err := promips.Build(data, promips.Options{Dir: dir, C: 0.9, P: 0.5})
//	if err != nil { ... }
//	defer index.Close()
//	results, stats, err := index.Search(ctx, query, 10)
//
// Results come back best-first with exact inner products; stats reports the
// verified candidate count and disk pages touched.
//
// # Lifecycle
//
// An index lives in a directory and survives the process that built it:
//
//	Build ─→ Insert/Delete ─→ Save ─→ Close          (persist)
//	Open  ─→ Search/Insert/… ─→ Compact ─→ Save …    (reopen, maintain)
//
// Save persists the full query-visible state — including inserted points
// awaiting compaction and tombstones — so Open returns an index that
// answers exactly as the saved one did. Compact folds the delta and drops
// tombstones by rebuilding into a fresh generation subdirectory and
// atomically swapping it in; searches keep running throughout. See the
// examples/ directory for complete programs and DESIGN.md for the system
// layout, the generation-directory swap protocol and the error taxonomy.
//
// # Durability
//
// Acknowledged updates survive crashes, not just Saves: every Insert and
// Delete appends a checksummed record to a write-ahead journal (wal.log in
// the active generation) before it returns, under the fsync policy of
// Options.Fsync — FsyncAlways (default: each acknowledgement is fsynced,
// surviving any crash), FsyncNever (buffered; surviving a clean Close), or
// FsyncDisabled (no journal; the pre-Save state is what a crash recovers).
// Open replays the journal on top of the last Save and reports the result
// via Recovery; Save and Compact empty the journal once the delta is
// durable in the metadata. Crash consistency at every write/rename/fsync
// boundary is exercised by a deterministic fault-injection matrix; see
// DESIGN.md, "Durability & recovery".
//
// # Per-query options
//
// Search, SearchIncremental and SearchBatch accept functional options:
// WithC and WithP re-derive the paper's two termination conditions with
// query-local guarantees, WithFilter restricts the search to ids a
// predicate accepts, and WithWorkers sizes SearchBatch's pool. All queries
// take a context and stop between iDistance sub-partition scans (and, for
// batches, between queries) once it is cancelled.
package promips

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"promips/internal/core"
	"promips/internal/fsutil"
)

// Options configures Build. The zero value reproduces the paper's default
// setting: c = 0.9, p = 0.5, optimized projected dimension, kp = 5,
// Nkey = 40, ksp = 10 and 4KB pages.
type Options struct {
	// Dir is the directory for the index's page files. Empty means a fresh
	// temporary directory (removed on Close unless the index was Saved).
	Dir string

	// C is the approximation ratio c ∈ (0,1). Default 0.9.
	C float64
	// P is the guarantee probability p ∈ (0,1). Default 0.5.
	P float64
	// M is the projected dimensionality; 0 selects the paper's optimized
	// m = argmin 2^m(m+1) + n/2^m.
	M int

	// Kp, Nkey and Ksp shape the iDistance partition pattern: top-level
	// k-means partitions, rings per partition, sub-partitions per ring.
	Kp, Nkey, Ksp int
	// Epsilon overrides the ring width (0 = derive from data).
	Epsilon float64

	// PageSize is the disk page size in bytes (default 4096). Vectors must
	// fit in one page: use larger pages for very high dimensions, as the
	// paper does for P53 (64KB).
	PageSize int
	// PoolSize is the per-file buffer pool capacity in pages.
	PoolSize int
	// MissLatency simulates a disk read per buffer-pool miss (one sleep
	// per readahead run). Zero — the default — disables it; benchmarks use
	// it to model a disk-resident working set (the paper's cost regime) on
	// machines whose page files sit in RAM.
	MissLatency time.Duration

	// Seed fixes all randomness (projections, clustering).
	Seed int64

	// SegmentEntries sets how many inserts accumulate in the mutable
	// in-memory delta before it freezes into an immutable, searchable
	// segment that a background goroutine flushes to its own seg file (see
	// DESIGN.md, "Update segments & snapshot reads"). 0 selects the default
	// (4096); a negative value disables segmenting (the delta grows until
	// Compact, as before). Persisted with the index, so Open keeps the
	// build-time value.
	SegmentEntries int

	// Fsync selects the write-ahead journal's durability policy for
	// Insert/Delete acknowledgements (see FsyncPolicy; the zero value is
	// FsyncAlways). The policy is persisted with the index, so Open keeps
	// the one the index was built with.
	Fsync FsyncPolicy

	// fs is the filesystem seam persistence writes through; nil means the
	// real filesystem. Unexported: it exists for the deterministic
	// crash-injection tests; other packages in this module set it with
	// WithFS.
	fs fsutil.FS
	// segFlushSync runs segment flushes inline on the update path instead
	// of in the background goroutine. Test-only (the crash matrix needs a
	// deterministic filesystem op count); never persisted.
	segFlushSync bool
}

// WithFS returns a copy of o whose persistence writes go through fsys —
// the deterministic crash-injection seam (internal/fsutil.FaultFS). The
// parameter type is internal on purpose: only packages inside this module
// (promips/shard's crash matrix) can name an fsutil.FS, so the seam stays
// module-private while still composing across package boundaries. nil
// restores the real filesystem.
func (o Options) WithFS(fsys fsutil.FS) Options {
	o.fs = fsys
	return o
}

// FsyncPolicy selects how the update journal acknowledges Insert/Delete;
// see the Durability section of the package documentation.
type FsyncPolicy = core.FsyncPolicy

const (
	// FsyncAlways (the default) fsyncs the journal before every update is
	// acknowledged: an acknowledged update survives any crash.
	FsyncAlways = core.FsyncAlways
	// FsyncNever journals updates without fsync (buffered in memory,
	// written out on Close): acknowledged updates survive a clean
	// shutdown, and a crash may lose the unwritten tail — but never
	// corrupts the index.
	FsyncNever = core.FsyncNever
	// FsyncDisabled turns the journal off entirely: updates are durable
	// only from the next successful Save.
	FsyncDisabled = core.FsyncDisabled
)

// Result is one returned point: its id (position in the Build slice) and
// exact inner product with the query.
type Result = core.Result

// SearchStats describes the work a query performed; see core.SearchStats.
type SearchStats = core.SearchStats

// DegradedStats reports a degraded sharded fan-out — which shards answered
// and the union-bound guarantee the merged result still carries; see
// core.DegradedStats and DESIGN.md, "Failure domains & degradation". It is
// carried by SearchStats.Degraded and is always nil for a single index.
type DegradedStats = core.DegradedStats

// SizeBreakdown itemizes index storage.
type SizeBreakdown = core.SizeBreakdown

// CacheStats aggregates the I/O engine's buffer-pool counters across every
// page file the index reads through (the iDistance B+-tree and projected
// data, and the original-vector store). These are whole-index, whole-run
// counters — concurrent queries all add to them — so two snapshots bracket
// a measured interval; per-query accounting lives in SearchStats instead.
type CacheStats struct {
	// Accesses is the number of logical page reads.
	Accesses int64
	// Hits counts reads served by the buffer pool, Misses those that went
	// to the file.
	Hits, Misses int64
	// Evictions counts pages the CLOCK policy pushed out to make room.
	Evictions int64
	// Writes counts page writes.
	Writes int64
}

// HitRatio returns Hits/Accesses, or 0 before any reads.
func (s CacheStats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Sub returns s - t component-wise, for bracketing an interval.
func (s CacheStats) Sub(t CacheStats) CacheStats {
	return CacheStats{
		Accesses:  s.Accesses - t.Accesses,
		Hits:      s.Hits - t.Hits,
		Misses:    s.Misses - t.Misses,
		Evictions: s.Evictions - t.Evictions,
		Writes:    s.Writes - t.Writes,
	}
}

// Add returns s + t component-wise — aggregation across page files is how
// CacheStats itself is produced, and the sharded index and its serving
// stats aggregate one level further, across child indexes.
func (s CacheStats) Add(t CacheStats) CacheStats {
	return CacheStats{
		Accesses:  s.Accesses + t.Accesses,
		Hits:      s.Hits + t.Hits,
		Misses:    s.Misses + t.Misses,
		Evictions: s.Evictions + t.Evictions,
		Writes:    s.Writes + t.Writes,
	}
}

// currentFile names the generation pointer inside an index directory. Its
// content is the active generation subdirectory, or "." when the index
// lives in the directory root (as Build lays it out).
const currentFile = "CURRENT"

// Index is a ProMIPS index over a dataset. An Index is safe for concurrent
// use: any number of goroutines may call Search, SearchIncremental, Exact
// and the accessors simultaneously; Insert/Delete interleave correctly
// with them (searches see either the state before or after an update,
// never a partial one); and Compact rebuilds in the background, swapping
// the new generation in atomically. Every query accounts its page accesses
// in a private accumulator, so SearchStats stays exact — the paper's
// per-query Page Access metric — under any level of concurrency. See
// DESIGN.md for the locking contract layer by layer.
type Index struct {
	inner *core.Index

	// fs is the filesystem seam the lifecycle writes (CURRENT, via
	// writeCurrent) go through. Assigned once at Build/Open.
	fs fsutil.FS

	// mu serializes the lifecycle operations (Save, Compact, Close) and
	// guards the fields below; queries and updates go straight to inner,
	// whose own lock orders them against Compact's swap.
	mu         sync.Mutex
	dir        string
	gen        string // active generation subdirectory; "" = dir itself
	durableGen string // the generation CURRENT names on disk (trails gen only after Compact's committed-corner fsync failure)
	ownsDir    bool   // Build created dir as a temp directory
	saved      bool   // the caller persisted the index with Save
}

// Build constructs an index over data. Every point must share one
// dimensionality; point i is identified by uint32(i) in results.
func Build(data [][]float32, opts Options) (*Index, error) {
	dir := opts.Dir
	ownsDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "promips-*")
		if err != nil {
			return nil, fmt.Errorf("promips: temp dir: %w", err)
		}
		dir, ownsDir = d, true
	}
	fsys := opts.fs
	if fsys == nil {
		fsys = fsutil.OS
	}
	coreOpts := core.Options{
		C: opts.C, P: opts.P, M: opts.M,
		Kp: opts.Kp, Nkey: opts.Nkey, Ksp: opts.Ksp, Epsilon: opts.Epsilon,
		PageSize: opts.PageSize, PoolSize: opts.PoolSize, MissLatency: opts.MissLatency,
		Seed:           opts.Seed,
		Fsync:          opts.Fsync,
		SegmentEntries: opts.SegmentEntries,
	}.WithFS(fsys)
	if opts.segFlushSync {
		coreOpts = coreOpts.WithSyncSegmentFlush()
	}
	inner, err := core.Build(data, dir, coreOpts)
	if err != nil {
		if ownsDir {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	return &Index{inner: inner, fs: fsys, dir: dir, ownsDir: ownsDir}, nil
}

// Open loads an index previously persisted to dir with Save, replaying
// the write-ahead journal on top of the persisted state: updates that were
// acknowledged under the index's fsync policy but not yet folded into a
// Save are recovered (Recovery reports how many). The returned index
// serves queries immediately and supports the full lifecycle — updates,
// Save, Compact. State that claims to be an index but cannot be loaded —
// an undecodable metadata or page file, an invalid CURRENT, a journal
// whose content no crash could have produced, or a CURRENT naming a
// generation whose files are gone — surfaces as ErrCorruptIndex; a
// directory that simply was never saved surfaces the underlying fs error.
func Open(dir string) (*Index, error) { return openFS(dir, fsutil.OS) }

// openFS is Open through an explicit filesystem seam. Recovery writes
// (truncating a torn journal tail) go through it, so the crash harness can
// crash recovery itself.
func openFS(dir string, fsys fsutil.FS) (*Index, error) {
	gen, err := readCurrent(fsys, dir)
	if err != nil {
		return nil, err
	}
	inner, err := core.OpenFS(filepath.Join(dir, gen), fsys)
	if err != nil {
		if gen != "" && errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("promips: %w: %s names generation %q but its files are missing: %v",
				ErrCorruptIndex, currentFile, gen, err)
		}
		return nil, err
	}
	sweepStaleGenerations(dir, gen)
	return &Index{inner: inner, fs: fsys, dir: dir, gen: gen, durableGen: gen, saved: true}, nil
}

// rootGenerationFiles are the files one generation consists of, as laid
// out by Build (page files) and Save (meta). removeGeneration and
// sweepStaleGenerations both rely on this list to retire a root-layout
// generation without touching CURRENT or the gen-* subdirectories beside
// it.
var rootGenerationFiles = []string{"idist.data", "idist.btree", "idist.meta", "orig.data", "promips.meta", "wal.log"}

// sweepStaleGenerations removes (best-effort) every generation other than
// the one CURRENT durably names: a crash between Compact's CURRENT flip
// and its old-generation removal — or during a generation build — leaves
// superseded or partial files that nothing will ever reference again.
// CURRENT is the single source of truth, so everything else is garbage.
// (Indexes are single-process; there is no other opener to race with.)
func sweepStaleGenerations(dir, active string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") && e.Name() != active {
			os.RemoveAll(filepath.Join(dir, e.Name()))
		}
	}
	if active != "" {
		// The root generation was superseded by a gen-* subdirectory.
		for _, name := range rootGenerationFiles {
			os.Remove(filepath.Join(dir, name))
		}
		removeRootSegFiles(dir)
	}
}

// removeRootSegFiles deletes (best-effort) the segment flush files of a
// superseded root-layout generation. Their count is workload-dependent, so
// they cannot ride the fixed rootGenerationFiles list.
func removeRootSegFiles(dir string) {
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return
	}
	for _, m := range matches {
		os.Remove(m)
	}
}

// Search returns the top-k c-AMIP points for q, best inner product first.
// With probability at least p, every returned point oi satisfies
// ⟨oi,q⟩ ≥ c·⟨o*i,q⟩ against the exact i-th MIP point o*i; (c, p) default
// to the build-time options and are overridden per query with WithC and
// WithP. WithFilter restricts the search to accepted ids. Cancelling ctx
// stops the scan between iDistance sub-partitions and returns ctx.Err().
func (ix *Index) Search(ctx context.Context, q []float32, k int, opts ...SearchOption) ([]Result, SearchStats, error) {
	cfg := resolveOptions(opts)
	return ix.inner.SearchContext(ctx, q, k, cfg.params)
}

// SearchBatch answers many queries concurrently against the shared index
// with a bounded worker pool (WithWorkers sizes it; the default is one
// worker per available CPU, at most one per query). Results and stats are
// positionally aligned with queries, and each query's answer is identical
// to what a sequential Search with the same options would return. The
// first query error cancels the remaining work and is returned; cancelling
// ctx stops the batch between queries with ctx.Err().
func (ix *Index) SearchBatch(ctx context.Context, queries [][]float32, k int, opts ...SearchOption) ([][]Result, []SearchStats, error) {
	cfg := resolveOptions(opts)
	return ix.inner.SearchBatch(ctx, queries, k, cfg.workers, cfg.params)
}

// SearchIncremental answers the same query with the paper's Algorithm 1
// (incremental NN search with per-point condition tests) instead of
// Quick-Probe. It exists for comparison; Search is the recommended path.
// It honors the same options and cancellation points as Search.
func (ix *Index) SearchIncremental(ctx context.Context, q []float32, k int, opts ...SearchOption) ([]Result, SearchStats, error) {
	cfg := resolveOptions(opts)
	return ix.inner.SearchIncrementalContext(ctx, q, k, cfg.params)
}

// Exact returns the true top-k MIP points by scanning the dataset. It is
// provided for evaluation (overall ratio, recall) and small workloads.
// Like Search, it takes a context: the scan is linear in the dataset and
// stops with ctx.Err() when cancelled — which is what lets a sharded
// fan-out (promips/shard) abandon an exact merge as soon as one shard
// fails or the caller gives up.
func (ix *Index) Exact(ctx context.Context, q []float32, k int) ([]Result, error) {
	return ix.inner.Exact(ctx, q, k)
}

// NextID returns the id the next Insert would assign. Ids are dense —
// base points then delta entries, never freed by deletes — so NextID is
// also the total number of ids ever assigned in this generation. The
// sharded index routes each Insert to the child whose next composed id is
// smallest, which keeps the global id space exactly as dense as a single
// index's.
func (ix *Index) NextID() uint32 { return ix.inner.NextID() }

// WALApply reports what ApplyWAL did with a shipped journal.
type WALApply struct {
	// Applied is the number of records that changed this index's state.
	Applied int
	// Skipped is the number of records the state already covered —
	// re-shipping a whole journal skips everything previously applied.
	Skipped int
	// Records is the total number of complete records decoded: the
	// replica's LSN watermark into the shipped log (a torn trailing record
	// is not counted; it was never acknowledged by the primary).
	Records int
	// Bytes is the length of the valid prefix consumed from the passed
	// chunk — the replication byte offset advances by exactly this much,
	// so a chunk torn in flight costs only a re-fetch of its tail. Zero
	// when the apply failed partway (the offset is no longer resumable and
	// the shard must re-snapshot).
	Bytes int64
}

// ApplyWAL replays a shipped copy of another index's write-ahead journal
// (the raw bytes of its wal.log) on top of this one — the replication hook
// shard.Follower tails a primary with. The bytes may be read mid-append: a
// torn trailing record is ignored under the journal's clean-truncation
// rule, complete records are applied through the same idempotent path
// crash recovery uses, and nothing is re-journaled locally. Feeding the
// same bytes again is a no-op, so a poller ships the whole file every
// round. An error wrapping ErrCorruptIndex means the bytes cannot be a
// journal state (or the log skips ahead of this replica — it missed an
// epoch and must re-snapshot); the successfully applied prefix stays
// applied.
func (ix *Index) ApplyWAL(b []byte) (WALApply, error) {
	return ix.ApplyWALChunk(b, false)
}

// ApplyWALChunk is ApplyWAL for a journal read from an arbitrary byte
// offset — the resumable form network WAL shipping uses. cont=false means
// b starts at the top of the journal file (header included); cont=true
// means b is a headerless record suffix resuming from a record boundary
// (what a primary serves for a tail request at offset N > 0). The torn-tail
// taxonomy is unchanged: a chunk truncated in flight keeps its valid
// prefix, and WALApply.Bytes tells the caller where to resume.
func (ix *Index) ApplyWALChunk(b []byte, cont bool) (WALApply, error) {
	applied, skipped, records, bytes, err := ix.inner.ApplyWALChunk(b, cont)
	return WALApply{Applied: applied, Skipped: skipped, Records: records, Bytes: bytes}, err
}

// Insert adds a point to the index and returns its id. Inserted points
// live in an exactly-evaluated in-memory delta until Compact; searches see
// them immediately and the (c, p) guarantee is preserved. This is the
// frequently-updated workload (§I of the paper) the lightweight index is
// designed for.
//
// Durability: the insert is appended to the write-ahead journal — under
// the index's Options.Fsync policy — before it is acknowledged, so a
// successful return means the point survives a crash (FsyncAlways) or a
// clean Close (FsyncNever) even without a Save. Inserting a vector of the
// wrong dimensionality returns ErrDimMismatch; inserting into a closed
// index returns ErrClosed; a journal write failure returns the I/O error
// and the insert is not applied.
func (ix *Index) Insert(v []float32) (uint32, error) { return ix.inner.Insert(v) }

// Delete tombstones the point with the given id and reports whether it was
// live. Deleted points stop appearing in results immediately. The boolean
// conflates "id absent" with "index closed" and "journal failed" — use
// DeleteChecked to tell them apart.
func (ix *Index) Delete(id uint32) bool { return ix.inner.Delete(id) }

// DeleteChecked tombstones like Delete but reports failure modes as typed
// errors: (false, ErrClosed) on a closed index, (false, err) when the
// tombstone could not be journaled (the delete is then not applied), and
// (false, nil) only when the id was genuinely absent or already deleted.
// Deletes are journaled and replayed exactly like inserts.
func (ix *Index) DeleteChecked(id uint32) (bool, error) { return ix.inner.DeleteChecked(id) }

// JournalLen returns the number of acknowledged updates sitting in the
// write-ahead journal — those a crash-recovery Open would replay. Save and
// Compact fold them into the persisted metadata and empty the journal; 0
// also when the journal is disabled (FsyncDisabled).
func (ix *Index) JournalLen() int { return ix.inner.JournalLen() }

// JournalPoisoned reports whether the write-ahead journal is refusing
// acknowledgements: updates bounce with ErrJournalPoisoned until a
// successful Save heals the journal through the metadata path. promipsd's
// /v1/readyz uses it to mark a primary alive-but-not-ready for writes.
func (ix *Index) JournalPoisoned() bool { return ix.inner.JournalPoisoned() }

// UpdateStats describes the state of the update pipeline — mutable-delta
// size, frozen segments and how many are durable in their own seg file,
// tombstones, and lifetime freeze/flush counters; see core.UpdateStats.
type UpdateStats = core.UpdateStats

// UpdateStats reports the update pipeline's current state. The
// FlushedSegments watermark is what automatic background compaction
// triggers on (see StartAutoCompact).
func (ix *Index) UpdateStats() UpdateStats { return ix.inner.UpdateStats() }

// RecoveryStats reports what the journal replay at Open recovered; see
// core.RecoveryStats.
type RecoveryStats = core.RecoveryStats

// Recovery describes what Open's journal replay did: how many acknowledged
// updates were recovered on top of the last Save, how many journal records
// the metadata already covered, and whether a torn record tail was cleanly
// truncated. Zero for a freshly built index.
func (ix *Index) Recovery() RecoveryStats { return ix.inner.Recovery() }

// Save persists the index's full query-visible state — metadata, the
// insert delta, tombstones — into its directory, next to the page files,
// and marks the directory as the caller's: Close no longer removes it even
// when Build created it as a temporary. A saved directory reopens with
// Open. Once the metadata is durable, the write-ahead journal is emptied:
// its updates are covered by the meta from here on (a crash between the
// two is safe — replay is idempotent).
func (ix *Index) Save() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.durableGen != ix.gen {
		// Complete the handover a committed-corner Compact left behind —
		// BEFORE inner.Save, whose journal Reset clears the poison that
		// was guarding acknowledgements: the pointer must be durable
		// first, or a crash would still recover the old generation
		// without the post-compact updates. ix.gen's files are complete
		// on disk (Compact persisted them before attempting the flip), so
		// flipping here is safe, and once it sticks the superseded
		// generation is garbage.
		if err := writeCurrent(ix.fs, ix.dir, ix.gen); err != nil {
			return err
		}
		ix.removeGeneration(ix.durableGen)
		ix.durableGen = ix.gen
	}
	if err := ix.inner.Save(filepath.Join(ix.dir, ix.gen)); err != nil {
		return err
	}
	if err := writeCurrent(ix.fs, ix.dir, ix.gen); err != nil {
		return err
	}
	ix.durableGen = ix.gen
	ix.saved = true
	return nil
}

// Compact folds the insert delta into the disk-resident structures and
// drops tombstoned points. It rebuilds into a fresh generation
// subdirectory (gen-000001, gen-000002, …) while searches keep answering
// against the old generation, then — in one exclusive section — folds in
// the updates that landed mid-rebuild, persists the new generation's
// metadata, atomically flips the CURRENT pointer, swaps the new
// generation in, and retires the old generation's files. Ids are
// reassigned densely (0..Len-1); remap[newID] gives the previous id so
// callers can relocate external references.
//
// The handover is atomic with respect to both crashes and updates: the
// new generation's files are durable before CURRENT names them, and no
// update can be acknowledged into the new generation's journal before the
// flip — so recovery at any instant loads a generation together with the
// journal holding its acknowledged updates, and the write-ahead guarantee
// holds across compaction. Cancelling ctx before the swap leaves the
// index untouched.
//
// Error contract: on error the index is untouched — still serving and
// journaling the old generation — and the returned remap is nil, with one
// narrow exception: if the pointer flip became visible but could not be
// made durable (a directory fsync failed after the rename — a drive-level
// failure), the swap completes and the VALID remap is returned with the
// error. In that corner, FsyncAlways updates fail until a Save completes
// the handover — an acknowledgement whose crash durability the pointer
// cannot back yet is refused, not faked — so the caller's recovery is:
// apply the remap, Save, resume updating.
func (ix *Index) Compact(ctx context.Context) ([]uint32, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	nextGen := fmt.Sprintf("gen-%06d", genSeq(ix.gen)+1)
	genDir := filepath.Join(ix.dir, nextGen)
	remap, err := ix.inner.Compact(ctx, genDir, func(next *core.Index) (bool, error) {
		// next.Save writes both meta files via temp+rename and fsyncs
		// genDir, so every dirent of the new generation is durable before
		// CURRENT starts naming it — a crash cannot persist the pointer
		// flip while losing the files it points at.
		if err := next.Save(genDir); err != nil {
			return false, fmt.Errorf("promips: compact: persist new generation: %w", err)
		}
		committed, err := writeCurrentCommitted(ix.fs, ix.dir, nextGen)
		if err != nil {
			err = fmt.Errorf("promips: compact: %w", err)
		}
		return committed, err
	})
	if remap == nil {
		if err != nil {
			// Nothing happened: the index still serves the old generation
			// and nothing — CURRENT included — references genDir, so the
			// partial build is removable.
			os.RemoveAll(genDir)
			return nil, err
		}
		return nil, fmt.Errorf("promips: compact: nil remap without error")
	}
	// The swap happened and CURRENT names nextGen (durably, unless err
	// reports the fsync corner). Retire every generation it supersedes —
	// the one the swap replaced AND, if an earlier committed-corner error
	// left durableGen trailing, the generation it still named.
	oldGen := ix.gen
	ix.gen = nextGen
	if err != nil {
		// Committed corner: keep the superseded files until a Save
		// confirms durability (it re-runs writeCurrent's fsync and then
		// retires the trailing generation).
		return remap, err
	}
	retired := map[string]bool{oldGen: true, ix.durableGen: true}
	delete(retired, nextGen)
	for gen := range retired {
		ix.removeGeneration(gen)
	}
	ix.durableGen = nextGen
	return remap, nil
}

// removeGeneration deletes a superseded generation's files. The root
// generation lives next to CURRENT and the gen-* subdirectories, so its
// files go individually; a gen directory goes wholesale.
func (ix *Index) removeGeneration(gen string) {
	if gen == "" {
		for _, name := range rootGenerationFiles {
			os.Remove(filepath.Join(ix.dir, name))
		}
		removeRootSegFiles(ix.dir)
		return
	}
	os.RemoveAll(filepath.Join(ix.dir, gen))
}

// LiveCount returns the number of live (non-deleted) points, including
// not-yet-compacted inserts.
func (ix *Index) LiveCount() int { return ix.inner.LiveCount() }

// Len returns the number of points in the disk-resident index (compaction
// folds the delta in, so Len can change over the index's lifetime).
func (ix *Index) Len() int { return ix.inner.Len() }

// Dim returns the dataset dimensionality.
func (ix *Index) Dim() int { return ix.inner.Dim() }

// M returns the projected dimensionality in use.
func (ix *Index) M() int { return ix.inner.M() }

// Sizes itemizes the index's storage footprint.
func (ix *Index) Sizes() SizeBreakdown { return ix.inner.Sizes() }

// CacheStats snapshots the buffer-pool counters of the index's I/O engine.
func (ix *Index) CacheStats() CacheStats {
	s := ix.inner.CacheStats()
	return CacheStats{
		Accesses:  s.Accesses,
		Hits:      s.Hits,
		Misses:    s.Misses,
		Evictions: s.Evictions,
		Writes:    s.Writes,
	}
}

// Options returns the configuration the index was built with (Dir set to
// the index directory). ix.dir is assigned once and never mutated, so no
// lifecycle lock is taken — the accessor stays responsive while Compact
// holds it for a rebuild.
func (ix *Index) Options() Options {
	o := ix.inner.Options()
	return Options{
		Dir: ix.dir,
		C:   o.C, P: o.P, M: o.M,
		Kp: o.Kp, Nkey: o.Nkey, Ksp: o.Ksp, Epsilon: o.Epsilon,
		PageSize: o.PageSize, PoolSize: o.PoolSize, MissLatency: o.MissLatency,
		Seed:           o.Seed,
		Fsync:          o.Fsync,
		SegmentEntries: o.SegmentEntries,
	}
}

// Dir returns the directory holding the index (generation subdirectories
// and the CURRENT pointer live underneath it). Like Options, it reads only
// immutable state and never blocks on a running Compact.
func (ix *Index) Dir() string { return ix.dir }

// Close releases the page files. When Build created a temporary directory
// and the index was never Saved, the directory is removed; a saved or
// caller-provided directory always survives Close. Operations after Close
// return ErrClosed.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	err := ix.inner.Close()
	if ix.ownsDir && !ix.saved {
		if rmErr := os.RemoveAll(ix.dir); err == nil {
			err = rmErr
		}
	}
	return err
}

// genSeq extracts the sequence number of a generation subdirectory name
// ("" — the root — is generation 0).
func genSeq(gen string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(gen, "gen-"))
	return n
}

// readCurrent resolves the active generation recorded in dir's CURRENT
// file. A missing file means the root layout Build produces.
func readCurrent(fsys fsutil.FS, dir string) (string, error) {
	b, err := fsys.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", nil
		}
		return "", fmt.Errorf("promips: read %s: %w", currentFile, err)
	}
	return parseCurrent(b)
}

// parseCurrent validates CURRENT's content — the trust boundary between
// the filesystem and the generation machinery, so arbitrary bytes must
// yield ErrCorruptIndex, never a path escape (pinned by FuzzParseCurrent).
func parseCurrent(b []byte) (string, error) {
	gen := strings.TrimSpace(string(b))
	if gen == "." {
		return "", nil
	}
	if gen == "" || strings.ContainsAny(gen, "/\\") || !strings.HasPrefix(gen, "gen-") {
		return "", fmt.Errorf("promips: %w: %s names invalid generation %q", ErrCorruptIndex, currentFile, gen)
	}
	return gen, nil
}

// writeCurrent atomically records gen as dir's active generation (write to
// a temp file, fsync, rename, fsync the directory).
func writeCurrent(fsys fsutil.FS, dir, gen string) error {
	_, err := writeCurrentCommitted(fsys, dir, gen)
	return err
}

// writeCurrentCommitted is writeCurrent reporting whether the pointer
// flip became visible. The rename inside WriteAtomic is the commit point:
// every WriteAtomic failure leaves CURRENT untouched (failures before the
// rename never touch it, and rename(2) makes no change when it fails), so
// WriteAtomic error ⇒ committed=false. A directory-fsync failure AFTER
// the rename leaves the flip visible but of uncertain durability
// (committed=true with the error). Compact's handover branches on exactly
// this distinction. The directory fsync is load-bearing: without it, a
// crash could persist the caller's subsequent old-generation unlinks but
// not the rename, leaving CURRENT pointing at files that no longer exist.
func writeCurrentCommitted(fsys fsutil.FS, dir, gen string) (bool, error) {
	content := gen
	if content == "" {
		content = "."
	}
	err := fsutil.WriteAtomic(fsys, filepath.Join(dir, currentFile), func(f fsutil.File) error {
		_, err := f.Write([]byte(content + "\n"))
		return err
	})
	if err != nil {
		return false, fmt.Errorf("promips: %w", err)
	}
	if err := fsutil.SyncDir(fsys, dir); err != nil {
		return true, fmt.Errorf("promips: %w", err)
	}
	return true, nil
}
