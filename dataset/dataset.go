// Package dataset is the public face of the synthetic benchmark dataset
// generators: analogues of the paper's four evaluation corpora (Table III —
// Netflix and Yahoo PureSVD latent factors, the P53 bio-assay features,
// SIFT descriptors) plus the repository's vector-file format. Commands and
// examples consume the generators through this package; the implementation
// lives in internal/dataset.
package dataset

import internal "promips/internal/dataset"

// Spec describes one benchmark dataset: its paper-scale dimensions, the
// laptop-scale defaults generated here, and the page-size/projected-
// dimension regime the paper's evaluation assigns it.
type Spec = internal.Spec

// Specs returns the four benchmark datasets in the paper's order.
func Specs() []Spec { return internal.Specs() }

// Get looks a dataset up by (case-sensitive) name: "Netflix", "Yahoo",
// "P53" or "Sift".
func Get(name string) (Spec, error) { return internal.Get(name) }

// Netflix models PureSVD item factors of the Netflix Prize matrix.
func Netflix() Spec { return internal.Netflix() }

// Yahoo models PureSVD factors of the Yahoo! Music dataset.
func Yahoo() Spec { return internal.Yahoo() }

// P53 models the p53 mutants bio-assay features (dimension-scaled).
func P53() Spec { return internal.P53() }

// Sift models SIFT gradient-histogram descriptors.
func Sift() Spec { return internal.Sift() }

// WriteFile stores vectors at path in the repository's vector-file format
// (the format cmd/datagen writes and cmd/promipsctl reads).
func WriteFile(path string, data [][]float32) error { return internal.WriteFile(path, data) }

// ReadFile loads vectors written by WriteFile.
func ReadFile(path string) ([][]float32, error) { return internal.ReadFile(path) }
