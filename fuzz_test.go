package promips

import (
	"strings"
	"testing"
)

// FuzzParseCurrent: CURRENT's content is the trust boundary between disk
// and the generation machinery. Arbitrary bytes must resolve to either the
// root layout, a plain gen-* name, or ErrCorruptIndex — never a name that
// escapes the index directory, and never a panic.
func FuzzParseCurrent(f *testing.F) {
	f.Add([]byte("gen-000001\n"))
	f.Add([]byte(".\n"))
	f.Add([]byte(""))
	f.Add([]byte("gen-../../../etc/passwd"))
	f.Add([]byte("gen-000002/../gen-000001"))
	f.Add([]byte("\\gen-1"))
	f.Add([]byte("  gen-000003  "))

	f.Fuzz(func(t *testing.T, data []byte) {
		gen, err := parseCurrent(data)
		if err != nil {
			if gen != "" {
				t.Fatalf("error AND generation %q", gen)
			}
			return
		}
		if gen == "" {
			return // root layout
		}
		if !strings.HasPrefix(gen, "gen-") || strings.ContainsAny(gen, "/\\") {
			t.Fatalf("accepted generation %q", gen)
		}
	})
}
