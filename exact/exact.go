// Package exact provides ground-truth MIP search by linear scan, plus a
// cache of exact top-k answers for a query set — the denominators of the
// overall-ratio and recall metrics in the paper's evaluation.
package exact

import (
	"sort"

	"promips/internal/vec"
	"promips/mips"
)

// TopK returns the exact k maximum-inner-product points of q in data,
// best first. Ties keep the lower id first.
func TopK(data [][]float32, q []float32, k int) []mips.Result {
	if k > len(data) {
		k = len(data)
	}
	if k <= 0 {
		return nil
	}
	all := make([]mips.Result, len(data))
	for i, o := range data {
		all[i] = mips.Result{ID: uint32(i), IP: vec.Dot(o, q)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].IP != all[j].IP {
			return all[i].IP > all[j].IP
		}
		return all[i].ID < all[j].ID
	})
	return all[:k]
}

// GroundTruth holds exact answers for a fixed query set.
type GroundTruth struct {
	K       int
	Queries int
	TopK    [][]mips.Result // per query, exact top-K
}

// Compute builds the ground truth for all queries at the given k.
func Compute(data [][]float32, queries [][]float32, k int) *GroundTruth {
	gt := &GroundTruth{K: k, Queries: len(queries), TopK: make([][]mips.Result, len(queries))}
	for i, q := range queries {
		gt.TopK[i] = TopK(data, q, k)
	}
	return gt
}

// OverallRatio is the paper's accuracy metric: (1/k)·Σ ⟨oi,q⟩/⟨o*i,q⟩ for
// one query's returned list against the exact list. Non-positive exact
// inner products contribute 1 (the ratio is undefined there; the paper's
// datasets keep them positive).
func (gt *GroundTruth) OverallRatio(query int, returned []mips.Result) float64 {
	ex := gt.TopK[query]
	k := len(ex)
	if k == 0 {
		return 1
	}
	var sum float64
	for i := 0; i < k; i++ {
		if i >= len(returned) || ex[i].IP <= 0 {
			sum++
			continue
		}
		r := returned[i].IP / ex[i].IP
		if r > 1 {
			r = 1
		}
		sum += r
	}
	return sum / float64(k)
}

// Recall is t/k: the fraction of returned points that belong to the exact
// top-k set.
func (gt *GroundTruth) Recall(query int, returned []mips.Result) float64 {
	ex := gt.TopK[query]
	k := len(ex)
	if k == 0 {
		return 1
	}
	exSet := make(map[uint32]bool, k)
	for _, r := range ex {
		exSet[r.ID] = true
	}
	t := 0
	for i, r := range returned {
		if i >= k {
			break
		}
		if exSet[r.ID] {
			t++
		}
	}
	return float64(t) / float64(k)
}
