package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"promips/internal/vec"
	"promips/mips"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	return data
}

func TestTopKBasic(t *testing.T) {
	data := [][]float32{{1, 0}, {0, 1}, {2, 0}, {-1, 0}}
	q := []float32{1, 0}
	got := TopK(data, q, 2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 0 {
		t.Fatalf("TopK = %+v", got)
	}
	if got[0].IP != 2 || got[1].IP != 1 {
		t.Fatalf("IPs = %v %v", got[0].IP, got[1].IP)
	}
}

func TestTopKEdges(t *testing.T) {
	data := [][]float32{{1}, {2}}
	if got := TopK(data, []float32{1}, 0); got != nil {
		t.Fatalf("k=0 should return nil, got %v", got)
	}
	if got := TopK(data, []float32{1}, 10); len(got) != 2 {
		t.Fatalf("k>n returned %d", len(got))
	}
	if got := TopK(nil, []float32{1}, 3); len(got) != 0 {
		t.Fatalf("empty data returned %d", len(got))
	}
}

func TestTopKTieBreaksByID(t *testing.T) {
	data := [][]float32{{1, 0}, {1, 0}, {1, 0}}
	got := TopK(data, []float32{1, 0}, 3)
	for i, r := range got {
		if r.ID != uint32(i) {
			t.Fatalf("tie order = %+v", got)
		}
	}
}

func TestOverallRatioAndRecall(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 200, 8)
	queries := randData(r, 5, 8)
	gt := Compute(data, queries, 10)
	for qi := range queries {
		// Perfect answers: ratio 1, recall 1.
		if ratio := gt.OverallRatio(qi, gt.TopK[qi]); ratio < 0.999 {
			t.Fatalf("perfect ratio = %v", ratio)
		}
		if rec := gt.Recall(qi, gt.TopK[qi]); rec != 1 {
			t.Fatalf("perfect recall = %v", rec)
		}
		// Garbage answers: low recall.
		garbage := make([]mips.Result, 10)
		for i := range garbage {
			id := uint32(100 + i)
			garbage[i] = mips.Result{ID: id, IP: vec.Dot(data[id], queries[qi])}
		}
		if rec := gt.Recall(qi, garbage); rec > 0.5 {
			t.Fatalf("garbage recall = %v", rec)
		}
	}
}

func TestOverallRatioShortList(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := randData(r, 50, 4)
	queries := randData(r, 1, 4)
	gt := Compute(data, queries, 10)
	// Returning only 3 of 10 results penalizes the ratio (missing entries
	// count as ratio 1 only when the exact IP is non-positive).
	short := gt.TopK[0][:3]
	ratio := gt.OverallRatio(0, short)
	if ratio <= 0 || ratio > 1 {
		t.Fatalf("short-list ratio = %v", ratio)
	}
}

// Property: TopK returns results in non-increasing IP order and each IP
// matches a direct dot product.
func TestPropertyTopKSortedAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(100)
		d := 1 + r.Intn(10)
		data := randData(r, n, d)
		q := randData(r, 1, d)[0]
		k := 1 + r.Intn(n)
		got := TopK(data, q, k)
		if len(got) != k {
			return false
		}
		for i, res := range got {
			if res.IP != vec.Dot(data[res.ID], q) {
				return false
			}
			if i > 0 && got[i-1].IP < res.IP {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
