package promips

import (
	"context"
	"math/rand"
	"os"
	"testing"
)

func randData(r *rand.Rand, n, d int) [][]float32 {
	data := make([][]float32, n)
	for i := range data {
		v := make([]float32, d)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	return data
}

func TestPublicAPIRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := randData(r, 800, 16)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 2, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Len() != 800 || ix.Dim() != 16 || ix.M() != 5 {
		t.Fatalf("metadata = %d %d %d", ix.Len(), ix.Dim(), ix.M())
	}
	q := randData(r, 1, 16)[0]
	res, st, err := ix.Search(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 || st.Candidates == 0 {
		t.Fatalf("results=%d candidates=%d", len(res), st.Candidates)
	}
	exact, err := ix.Exact(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].IP > exact[0].IP+1e-9 {
		t.Fatal("approximate result beat the exact maximum")
	}
	inc, _, err := ix.SearchIncremental(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != 10 {
		t.Fatalf("incremental returned %d", len(inc))
	}
}

func TestTempDirLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data := randData(r, 100, 8)
	ix, err := Build(data, Options{Seed: 4, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := ix.Dir()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("temp dir missing: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("temp dir not removed: %v", err)
	}
}

func TestExplicitDirRetained(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := randData(r, 100, 8)
	dir := t.TempDir()
	ix, err := Build(data, Options{Dir: dir, Seed: 6, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("caller-provided dir must survive Close: %v", err)
	}
}

func TestAccuracyAgainstExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data := randData(r, 1500, 24)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 8, C: 0.9, P: 0.7, M: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	var ratioSum float64
	const queries = 20
	for trial := 0; trial < queries; trial++ {
		q := randData(r, 1, 24)[0]
		res, _, err := ix.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := ix.Exact(context.Background(), q, 10)
		for i := range res {
			if exact[i].IP > 0 {
				ratioSum += res[i].IP / exact[i].IP
			} else {
				ratioSum++
			}
		}
	}
	avg := ratioSum / float64(queries*10)
	if avg < 0.9 {
		t.Fatalf("average overall ratio %.3f below c", avg)
	}
}

func TestSizes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := randData(r, 300, 12)
	ix, err := Build(data, Options{Dir: t.TempDir(), Seed: 10, M: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Sizes().Total() <= 0 {
		t.Fatal("index reports zero size")
	}
}
